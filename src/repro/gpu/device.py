"""GPU device specifications (paper Table 1 + Section 4.1).

Each :class:`DeviceSpec` combines

* published specs from Table 1 (cores, peak bandwidth, DP throughput);
* the *measured* bandwidths the paper reports in Section 4.1 (~114, ~149
  and 159 GB/s) — the timing model uses these, not the pin bandwidth;
* micro-architecture constants (warp size, DRAM transaction size, texture
  cacheline size, read-only/texture cache capacity per SM);
* an **interconnect model** for multi-device execution
  (:mod:`repro.exec`): a PCIe/NVLink-style link bandwidth, a per-message
  latency and the transfer granularity used when the sharded engine
  accounts broadcast/halo traffic. The defaults model an NVLink-class
  peer link (~25 GB/s effective, ~2 us per transfer);
  :func:`dataclasses.replace` builds PCIe-class variants (e.g. 12 GB/s,
  10 us) for sensitivity studies;
* a **calibrated decode throughput**: the one free parameter of the timing
  model. Section 4.2.1 reports that BRO-ELL needs space savings of 17%, 9%
  and 23% on the C2070, GTX680 and K20 to break even with ELLPACK; solving
  the roofline model for the decode rate that reproduces those break-even
  points gives ``decode_gops = ops_per_iter * measured_bw / (4 * eta_star)``
  (see DESIGN.md). The value is fixed here once and reused unchanged in
  every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import DeviceError

__all__ = [
    "DeviceSpec",
    "TESLA_C2070",
    "GTX680",
    "TESLA_K20",
    "DEVICES",
    "get_device",
]

#: Decode instructions charged per (thread, column) iteration of Alg. 1
#: (shift/mask/compare/accumulate) — used both by the kernels and by the
#: calibration formula below.
DECODE_OPS_PER_ITER = 6
#: Extra decode instructions when the iteration loads a fresh symbol.
DECODE_OPS_PER_LOAD = 4


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU."""

    name: str
    compute_capability: str
    cores: int
    sm_count: int
    peak_bw_gbps: float  #: pin bandwidth, Table 1
    measured_bw_gbps: float  #: achievable bandwidth, Section 4.1
    dp_gflops: float  #: peak double-precision throughput, Table 1
    decode_gops: float  #: calibrated decode-op throughput (see module doc)
    warp_size: int = 32
    transaction_bytes: int = 128  #: DRAM transaction granularity
    tex_line_bytes: int = 32  #: texture cacheline granularity
    tex_cache_kb_per_sm: float = 12.0  #: texture / read-only cache per SM
    launch_overhead_us: float = 5.0  #: per-kernel-launch fixed cost
    #: warps per SM needed for full latency hiding (occupancy model).
    saturation_warps_per_sm: int = 16
    #: device-to-device link bandwidth (NVLink-class effective rate).
    interconnect_bw_gbps: float = 25.0
    #: fixed latency charged per critical-path device-to-device message.
    interconnect_latency_us: float = 2.0
    #: transfer granularity of halo/broadcast traffic (one cacheline).
    interconnect_line_bytes: int = 128

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.sm_count <= 0:
            raise DeviceError(f"{self.name}: cores and sm_count must be positive")
        if self.measured_bw_gbps > self.peak_bw_gbps:
            raise DeviceError(f"{self.name}: measured bandwidth exceeds peak")
        if min(self.measured_bw_gbps, self.dp_gflops, self.decode_gops) <= 0:
            raise DeviceError(f"{self.name}: throughputs must be positive")
        if self.interconnect_bw_gbps <= 0 or self.interconnect_line_bytes <= 0:
            raise DeviceError(f"{self.name}: interconnect model must be positive")
        if self.interconnect_latency_us < 0:
            raise DeviceError(f"{self.name}: interconnect latency must be >= 0")

    @property
    def measured_bw(self) -> float:
        """Measured bandwidth in bytes/second."""
        return self.measured_bw_gbps * 1e9

    @property
    def peak_bw(self) -> float:
        """Peak (pin) bandwidth in bytes/second."""
        return self.peak_bw_gbps * 1e9

    @property
    def dp_flops(self) -> float:
        """Peak double-precision rate in flops/second."""
        return self.dp_gflops * 1e9

    @property
    def decode_rate(self) -> float:
        """Calibrated decode throughput in ops/second."""
        return self.decode_gops * 1e9

    @property
    def tex_cache_bytes_per_sm(self) -> int:
        """Texture-cache capacity per SM in bytes."""
        return int(self.tex_cache_kb_per_sm * 1024)

    @property
    def saturation_threads(self) -> int:
        """Total resident threads needed to hide memory latency."""
        return self.sm_count * self.saturation_warps_per_sm * self.warp_size

    @property
    def interconnect_bw(self) -> float:
        """Device-to-device link bandwidth in bytes/second."""
        return self.interconnect_bw_gbps * 1e9

    @property
    def interconnect_latency(self) -> float:
        """Per-message interconnect latency in seconds."""
        return self.interconnect_latency_us * 1e-6


def _calibrated_decode_gops(measured_bw_gbps: float, eta_star: float) -> float:
    """Closed-form decode-rate calibration from a break-even space saving.

    At the break-even point the exposed decode time equals the index-traffic
    time saved: ``decode_ops / D = 4 * eta* * nnz / BW`` with
    ``decode_ops ~= (OPS_PER_ITER + OPS_PER_LOAD * (1 - eta*)) * nnz``.
    """
    ops_per_iter = DECODE_OPS_PER_ITER + DECODE_OPS_PER_LOAD * (1.0 - eta_star)
    return ops_per_iter * measured_bw_gbps / (4.0 * eta_star)


#: Fermi-class Tesla C2070 (Table 1, break-even eta* = 17%).
TESLA_C2070 = DeviceSpec(
    name="Tesla C2070",
    compute_capability="2.0",
    cores=448,
    sm_count=14,
    peak_bw_gbps=144.0,
    measured_bw_gbps=114.0,
    dp_gflops=515.0,
    decode_gops=_calibrated_decode_gops(114.0, 0.17),
    tex_cache_kb_per_sm=12.0,
)

#: Kepler GeForce GTX680 (Table 1, break-even eta* = 9%).
GTX680 = DeviceSpec(
    name="GTX680",
    compute_capability="3.0",
    cores=1536,
    sm_count=8,
    peak_bw_gbps=192.3,
    measured_bw_gbps=149.0,
    dp_gflops=129.0,
    decode_gops=_calibrated_decode_gops(149.0, 0.09),
    tex_cache_kb_per_sm=48.0,
)

#: Kepler Tesla K20 (Table 1, break-even eta* = 23%).
TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    compute_capability="3.5",
    cores=2496,
    sm_count=13,
    peak_bw_gbps=208.0,
    measured_bw_gbps=159.0,
    dp_gflops=1170.0,
    decode_gops=_calibrated_decode_gops(159.0, 0.23),
    tex_cache_kb_per_sm=48.0,
)

DEVICES: Dict[str, DeviceSpec] = {
    "c2070": TESLA_C2070,
    "gtx680": GTX680,
    "k20": TESLA_K20,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by its short key (``c2070``, ``gtx680``, ``k20``)."""
    key = name.lower().replace(" ", "").replace("tesla", "")
    if key in DEVICES:
        return DEVICES[key]
    for spec in DEVICES.values():
        if spec.name.lower() == name.lower():
            return spec
    raise DeviceError(f"unknown device {name!r}; available: {sorted(DEVICES)}")
