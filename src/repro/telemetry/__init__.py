"""repro.telemetry — pipeline tracing, unified metrics, and exporters.

The observability layer of the simulator:

* :mod:`~repro.telemetry.tracer` — span-based pipeline tracing with a
  zero-overhead disabled path;
* :mod:`~repro.telemetry.metrics` — one registry unifying kernel
  counters, texture-cache stats, bitstream stats and the integrity
  counters behind a single snapshot API;
* :mod:`~repro.telemetry.exporters` — JSONL, Chrome trace-event and
  Prometheus text renderings;
* :mod:`~repro.telemetry.benchreport` — ``BENCH_<run>.json`` emission and
  the regression comparator used by ``repro bench --compare`` and CI;
* :mod:`~repro.telemetry.profiler` — the ``repro profile`` pipeline
  (imported lazily; it depends on the format/kernel layers).

Switch the whole layer on and off with :func:`enable` / :func:`disable`,
or scoped with :func:`tracing`::

    from repro import telemetry

    with telemetry.tracing() as tracer:
        run_spmv(matrix, x, "k20")
    print(telemetry.exporters.to_chrome_trace(tracer))
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from . import benchreport, exporters, metrics, remote, tracer
from .benchreport import compare_reports, load_report, make_report, write_report
from .exporters import prometheus_text, to_chrome_trace, to_jsonl
from .metrics import REGISTRY, MetricsRegistry
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)

__all__ = [
    # submodules
    "tracer",
    "metrics",
    "exporters",
    "benchreport",
    "remote",
    # tracing
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "get_tracer",
    "enable",
    "disable",
    "enabled",
    "tracing",
    # metrics
    "MetricsRegistry",
    "REGISTRY",
    # exporters
    "to_jsonl",
    "to_chrome_trace",
    "prometheus_text",
    # bench reports
    "make_report",
    "write_report",
    "load_report",
    "compare_reports",
]


#: Serializes enable()/disable() transitions so concurrent callers can't
#: interleave the tracer and registry installs.
_STATE_LOCK = threading.Lock()


def enable(
    trace: Optional[Tracer] = None,
    collect_metrics: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> Tracer:
    """Switch the telemetry layer on; returns the active tracer.

    Idempotent: calling ``enable()`` while already enabled keeps the
    current tracer and collection target (spans and metric series are not
    dropped or re-registered). Passing an explicit ``trace`` or
    ``registry`` still swaps the respective target.
    """
    with _STATE_LOCK:
        current = get_tracer()
        if trace is None and current is not None:
            t = current
        else:
            t = enable_tracing(trace)
        if collect_metrics:
            if registry is None and metrics.collecting():
                pass  # keep the registry already receiving emissions
            else:
                metrics.start_collecting(registry)
        return t


def disable() -> None:
    """Switch tracing and metric collection off (the default state).

    Idempotent and thread-safe: safe to call when already disabled.
    """
    with _STATE_LOCK:
        disable_tracing()
        metrics.stop_collecting()


def enabled() -> bool:
    """True while a tracer is installed."""
    return get_tracer() is not None


@contextmanager
def tracing(
    trace: Optional[Tracer] = None,
    collect_metrics: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tracer]:
    """Scoped telemetry: enable on entry, restore the prior state on exit."""
    prev_tracer = get_tracer()
    prev_collecting = metrics.collecting()
    prev_registry = metrics.registry() if prev_collecting else None
    t = enable(trace, collect_metrics=collect_metrics, registry=registry)
    try:
        yield t
    finally:
        if prev_tracer is not None:
            enable_tracing(prev_tracer)
        else:
            disable_tracing()
        if prev_collecting:
            metrics.start_collecting(prev_registry)
        else:
            metrics.stop_collecting()
