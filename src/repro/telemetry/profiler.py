"""The ``repro profile`` pipeline: trace one full SpMV run end to end.

:func:`profile_matrix` executes the whole pipeline — matrix
generate/load, format conversion (delta-encode + bit-pack inside),
sealing, verified dispatch, kernel and reduction — under an enabled
tracer and metrics registry, then wraps everything a profiler view needs
in a :class:`ProfileReport`: the span tree, the roofline timing
attribution (``t_mem``/``t_flop``/``t_decode``/``t_launch``), the unified
metrics snapshot, and the per-block profile of the storage format
(per-slice for BRO-ELL, per-interval for BRO-COO, per-part for the
hybrids).

This module sits *above* the format and kernel layers, so it is imported
lazily by :mod:`repro.telemetry` consumers (the CLI) rather than from the
package ``__init__`` — the rest of the telemetry package must stay
importable from the hot paths it instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import registry as _registry
from ..exec.policy import ExecutionPolicy
from . import metrics as _metrics
from .metrics import MetricsRegistry
from .tracer import Tracer
from . import tracing

__all__ = ["ProfileReport", "profile_matrix"]


@dataclass
class ProfileReport:
    """Everything one profiled pipeline run produced."""

    matrix: str
    storage: str
    device_name: str
    scale: float
    tracer: Tracer
    result: Any  #: the SpMVResult of the dispatched kernel
    snapshot: Dict[str, Any]  #: unified metrics snapshot
    container: Any  #: the converted (sealed) storage container

    # ------------------------------------------------------------------
    def attribution(self) -> List[Dict[str, Any]]:
        """Roofline attribution of the predicted kernel time.

        One row per timing component with its share of the total; the
        ``max(t_mem, t_flop)`` overlap means the hidden component shows a
        zero exposed share.
        """
        t = self.result.timing
        total = t.time
        exposed = {
            "t_mem": t.t_mem if t.t_mem >= t.t_flop else 0.0,
            "t_flop": t.t_flop if t.t_flop > t.t_mem else 0.0,
            "t_decode": t.t_decode,
            "t_launch": t.t_launch,
        }
        raw = {
            "t_mem": t.t_mem,
            "t_flop": t.t_flop,
            "t_decode": t.t_decode,
            "t_launch": t.t_launch,
        }
        return [
            {
                "component": name,
                "us": raw[name] * 1e6,
                "exposed_us": exposed[name] * 1e6,
                "share_pct": (100.0 * exposed[name] / total) if total else 0.0,
            }
            for name in ("t_mem", "t_flop", "t_decode", "t_launch")
        ]

    def span_rows(self) -> List[Dict[str, Any]]:
        """The span tree flattened to printable rows, in start order."""
        return [
            {
                "span": ("  " * s.depth) + s.name,
                "category": s.category,
                "dur_us": s.duration_us,
            }
            for s in self.tracer.spans
        ]

    def block_profile(self) -> Optional[Tuple[str, List[str]]]:
        """Per-block profile (header, rows) for the storage format.

        The view comes from the format's registry-declared
        :class:`~repro.registry.BlockTracer` (per-slice for BRO-ELL,
        per-interval for BRO-COO, per-part for the hybrids); formats
        without one return ``None``.
        """
        tracer = _registry.tracer_for(self.container.format_name)
        if tracer is None:
            return None
        device = self.result.device
        return tracer.header(), [
            t.row() for t in tracer.rows(self.container, device)
        ]


def profile_matrix(
    spec: str,
    storage: str = "bro_ell",
    device: str = "k20",
    scale: float = 0.05,
    h: int = 256,
    seed: int = 0,
    verify: str = "checksum",
    devices: int = 1,
    backend: str = "thread",
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ProfileReport:
    """Run the full pipeline for one matrix under telemetry.

    Parameters
    ----------
    spec:
        A Table 2 matrix name (generated at ``scale``) or a ``.mtx`` path.
    storage:
        Target storage format (any registered format with a kernel).
    device:
        Simulated device name (see ``repro devices``).
    verify:
        Integrity mode passed to the dispatcher (``"off"``, ``"checksum"``,
        ``"structure"`` or ``"full"``); the default exercises the seal and
        checksum-verification spans.
    devices / backend:
        Shard the dispatch across ``devices`` simulated devices on the
        ``"thread"`` or ``"process"`` execution backend. On the process
        backend the worker spans are grafted into the trace (one Chrome
        lane per worker — see :mod:`repro.telemetry.remote`) and the
        merged metrics carry ``worker=`` labelled series.
    tracer / registry:
        Inject a tracer (e.g. with a deterministic clock) or a private
        metrics registry; fresh ones are created by default.
    """
    from ..pipeline import Session

    own_registry = registry if registry is not None else MetricsRegistry()
    with tracing(tracer, registry=own_registry) as t:
        # The reference engine keeps the historical span tree (the
        # stepwise kernel span, not a plan replay) in the profile output.
        sess = Session(
            device,
            policy=ExecutionPolicy(
                verify=verify, engine="reference",
                devices=devices, backend=backend,
            ),
        )
        sess.load(spec, scale=scale)
        kwargs: Dict[str, Any] = (
            {"h": h} if _registry.get_spec(storage).accepts("h") else {}
        )
        sess.convert(storage, **kwargs).seal()
        x = np.random.default_rng(seed).standard_normal(sess.matrix.shape[1])
        result = sess.run(x)
        snapshot = _metrics.registry().unified_snapshot()
        mat = sess.matrix
    if backend == "process" and devices > 1:
        from ..exec.engine import shutdown_pools

        shutdown_pools(mat)
    return ProfileReport(
        matrix=spec,
        storage=storage,
        device_name=result.device.name,
        scale=scale,
        tracer=t,
        result=result,
        snapshot=snapshot,
        container=mat,
    )
