"""The ``repro profile`` pipeline: trace one full SpMV run end to end.

:func:`profile_matrix` executes the whole pipeline — matrix
generate/load, format conversion (delta-encode + bit-pack inside),
sealing, verified dispatch, kernel and reduction — under an enabled
tracer and metrics registry, then wraps everything a profiler view needs
in a :class:`ProfileReport`: the span tree, the roofline timing
attribution (``t_mem``/``t_flop``/``t_decode``/``t_launch``), the unified
metrics snapshot, and the per-block profile of the storage format
(per-slice for BRO-ELL, per-interval for BRO-COO, per-part for the
hybrids).

This module sits *above* the format and kernel layers, so it is imported
lazily by :mod:`repro.telemetry` consumers (the CLI) rather than from the
package ``__init__`` — the rest of the telemetry package must stay
importable from the hot paths it instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..formats.conversion import convert
from ..formats.coo import COOMatrix
from ..integrity.checksums import seal
from ..kernels.dispatch import run_spmv
from . import metrics as _metrics
from .metrics import MetricsRegistry
from .tracer import Tracer
from . import tracing

__all__ = ["ProfileReport", "profile_matrix"]

#: Formats whose converters take a slice height ``h``.
_H_FORMATS = ("sliced_ellpack", "bro_ell", "bro_hyb", "bro_ell_vc")


@dataclass
class ProfileReport:
    """Everything one profiled pipeline run produced."""

    matrix: str
    storage: str
    device_name: str
    scale: float
    tracer: Tracer
    result: Any  #: the SpMVResult of the dispatched kernel
    snapshot: Dict[str, Any]  #: unified metrics snapshot
    container: Any  #: the converted (sealed) storage container

    # ------------------------------------------------------------------
    def attribution(self) -> List[Dict[str, Any]]:
        """Roofline attribution of the predicted kernel time.

        One row per timing component with its share of the total; the
        ``max(t_mem, t_flop)`` overlap means the hidden component shows a
        zero exposed share.
        """
        t = self.result.timing
        total = t.time
        exposed = {
            "t_mem": t.t_mem if t.t_mem >= t.t_flop else 0.0,
            "t_flop": t.t_flop if t.t_flop > t.t_mem else 0.0,
            "t_decode": t.t_decode,
            "t_launch": t.t_launch,
        }
        raw = {
            "t_mem": t.t_mem,
            "t_flop": t.t_flop,
            "t_decode": t.t_decode,
            "t_launch": t.t_launch,
        }
        return [
            {
                "component": name,
                "us": raw[name] * 1e6,
                "exposed_us": exposed[name] * 1e6,
                "share_pct": (100.0 * exposed[name] / total) if total else 0.0,
            }
            for name in ("t_mem", "t_flop", "t_decode", "t_launch")
        ]

    def span_rows(self) -> List[Dict[str, Any]]:
        """The span tree flattened to printable rows, in start order."""
        return [
            {
                "span": ("  " * s.depth) + s.name,
                "category": s.category,
                "dur_us": s.duration_us,
            }
            for s in self.tracer.spans
        ]

    def block_profile(self) -> Optional[Tuple[str, List[str]]]:
        """Per-block profile (header, rows) for the storage format.

        BRO-ELL gets a per-slice profile, BRO-COO a per-interval profile,
        HYB/BRO-HYB a per-part profile; other formats have no block-level
        view and return ``None``.
        """
        from ..core.bro_coo import BROCOOMatrix
        from ..core.bro_ell import BROELLMatrix
        from ..core.bro_hyb import BROHYBMatrix
        from ..formats.hyb import HYBMatrix
        from ..gpu.trace import (
            IntervalTrace,
            PartTrace,
            SliceTrace,
            trace_bro_coo,
            trace_bro_ell,
            trace_hyb,
        )

        device = self.result.device
        mat = self.container
        if isinstance(mat, BROELLMatrix):
            return SliceTrace.header(), [
                t.row() for t in trace_bro_ell(mat, device)
            ]
        if isinstance(mat, BROCOOMatrix):
            return IntervalTrace.header(), [
                t.row() for t in trace_bro_coo(mat, device)
            ]
        if isinstance(mat, (HYBMatrix, BROHYBMatrix)):
            return PartTrace.header(), [
                t.row() for t in trace_hyb(mat, device)
            ]
        return None


def _load(spec: str, scale: float) -> COOMatrix:
    from ..matrices.io import read_matrix_market
    from ..matrices.suite import TABLE2, generate

    if spec in TABLE2:
        return generate(spec, scale=scale)
    if spec.endswith(".mtx"):
        return read_matrix_market(spec)
    raise ReproError(
        f"{spec!r} is neither a Table 2 matrix name nor a .mtx path"
    )


def profile_matrix(
    spec: str,
    storage: str = "bro_ell",
    device: str = "k20",
    scale: float = 0.05,
    h: int = 256,
    seed: int = 0,
    verify: str = "checksum",
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ProfileReport:
    """Run the full pipeline for one matrix under telemetry.

    Parameters
    ----------
    spec:
        A Table 2 matrix name (generated at ``scale``) or a ``.mtx`` path.
    storage:
        Target storage format (any registered format with a kernel).
    device:
        Simulated device name (see ``repro devices``).
    verify:
        Integrity mode passed to the dispatcher (``"off"``, ``"checksum"``,
        ``"structure"`` or ``"full"``); the default exercises the seal and
        checksum-verification spans.
    tracer / registry:
        Inject a tracer (e.g. with a deterministic clock) or a private
        metrics registry; fresh ones are created by default.
    """
    own_registry = registry if registry is not None else MetricsRegistry()
    with tracing(tracer, registry=own_registry) as t:
        coo = _load(spec, scale)
        kwargs: Dict[str, Any] = {"h": h} if storage in _H_FORMATS else {}
        mat = seal(convert(coo, storage, **kwargs))
        x = np.random.default_rng(seed).standard_normal(coo.shape[1])
        result = run_spmv(mat, x, device, verify=verify)
        snapshot = _metrics.registry().unified_snapshot()
    return ProfileReport(
        matrix=spec,
        storage=storage,
        device_name=result.device.name,
        scale=scale,
        tracer=t,
        result=result,
        snapshot=snapshot,
        container=mat,
    )
