"""Exporters: JSONL event log, Chrome trace-event JSON, Prometheus text.

Three render targets for one traced run:

* :func:`to_jsonl` — one JSON object per span, machine-greppable;
* :func:`chrome_trace_events` / :func:`to_chrome_trace` — the Chrome
  trace-event format (an array of complete ``"ph": "X"`` events plus
  instant ``"ph": "i"`` events), loadable in ``chrome://tracing`` and
  `Perfetto <https://ui.perfetto.dev>`_;
* :func:`prometheus_text` — the Prometheus text exposition format for a
  :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`.

All functions are pure: they take a tracer/snapshot and return a string
(or event list); ``write_*`` variants add the file plumbing.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, in start order, newline-delimited."""
    lines = []
    for s in tracer.spans:
        record = {"type": "span", **s.to_dict()}
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path: str) -> None:
    _write(path, to_jsonl(tracer))


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
#: Chrome pid of the coordinator lane; workers get ``pid = 2 + slot``.
_COORDINATOR_PID = 1


def _span_lane(span: Any) -> int:
    """The Chrome process lane for a span: the coordinator lane, or one
    lane per worker slot for spans grafted from worker processes (they
    carry a ``worker`` attribute — see ``repro.telemetry.remote``)."""
    worker = span.attrs.get("worker") if span.attrs else None
    if worker is None:
        return _COORDINATOR_PID
    return _COORDINATOR_PID + 1 + int(worker)


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event dicts (complete-event ``ph: "X"``).

    Timestamps (``ts``) and durations (``dur``) are microseconds relative
    to the tracer's start, as the format requires. Span events become
    instant events (``ph: "i"``).

    Spans grafted from worker processes (``worker`` attribute) land on a
    dedicated process lane per worker, announced with ``process_name`` /
    ``thread_name`` metadata events (``ph: "M"``) so Perfetto labels the
    lanes "worker 0", "worker 1", ... Metadata is only emitted when
    worker spans are present, so single-process traces are unchanged.
    """
    events: List[Dict[str, Any]] = []
    worker_pids: Dict[int, int] = {}  # lane pid -> worker OS pid
    for s in tracer.spans:
        d = s.to_dict()
        pid = _span_lane(s)
        if pid != _COORDINATOR_PID:
            worker_pids.setdefault(
                pid, int(s.attrs.get("worker_pid", 0) or 0)
            )
        args: Dict[str, Any] = {}
        for key in ("attrs", "counters", "timing"):
            if key in d:
                args[key] = d[key]
        events.append(
            {
                "name": s.name,
                "cat": s.category or "repro",
                "ph": "X",
                "ts": d["ts_us"],
                "dur": d["dur_us"],
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
        for e in d.get("events", ()):
            events.append(
                {
                    "name": f"{s.name}:{e.get('name', 'event')}",
                    "cat": s.category or "repro",
                    "ph": "i",
                    "ts": e.get("ts_us", d["ts_us"]),
                    "pid": pid,
                    "tid": 1,
                    "s": "t",  # thread-scoped instant
                    "args": {k: v for k, v in e.items() if k not in ("ts_us",)},
                }
            )
    if worker_pids:
        meta: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": _COORDINATOR_PID,
                "tid": 1,
                "args": {"name": "coordinator"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _COORDINATOR_PID,
                "tid": 1,
                "args": {"name": "dispatch"},
            },
        ]
        for pid in sorted(worker_pids):
            slot = pid - _COORDINATOR_PID - 1
            os_pid = worker_pids[pid]
            label = f"worker {slot}"
            if os_pid:
                label += f" (pid {os_pid})"
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": label},
                }
            )
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": f"shard-worker-{slot}"},
                }
            )
        events = meta + events
    return events


def to_chrome_trace(tracer: Tracer, indent: int | None = None) -> str:
    """The Chrome trace as a JSON array string."""
    return json.dumps(chrome_trace_events(tracer), indent=indent)


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    _write(path, to_chrome_trace(tracer))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _sanitize_metric_name(name: str) -> str:
    """Map a series name onto the Prometheus metric-name alphabet
    ``[a-zA-Z_:][a-zA-Z0-9_:]*`` — every disallowed character becomes an
    underscore (stable: the same input always yields the same output)."""
    out = _METRIC_NAME_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


_METRIC_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(key: str) -> str:
    """``kernel.dram_bytes{format="x"}`` -> the same key with the metric
    name sanitized to Prometheus naming rules (label values, already
    escaped by the registry's canonical key, pass through untouched)."""
    if "{" in key:
        name, _, rest = key.partition("{")
        return _sanitize_metric_name(name) + "{" + rest
    return _sanitize_metric_name(key)


def prometheus_text(snapshot: Dict[str, Any], prefix: str = "repro_") -> str:
    """Render a registry snapshot in the Prometheus text format.

    ``snapshot`` is the dict returned by
    :meth:`MetricsRegistry.snapshot` / ``unified_snapshot``.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def emit(kind: str, key: str, value: float) -> None:
        series = prefix + _prom_name(key)
        bare = series.partition("{")[0]
        if seen_types.get(bare) != kind:
            lines.append(f"# TYPE {bare} {kind}")
            seen_types[bare] = kind
        lines.append(f"{series} {value:g}")

    for key in sorted(snapshot.get("counters", {})):
        emit("counter", key, snapshot["counters"][key])
    for key in sorted(snapshot.get("gauges", {})):
        emit("gauge", key, snapshot["gauges"][key])
    for key in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][key]
        series = prefix + _prom_name(key)
        base, _, labels = series.partition("{")
        labels = labels[:-1]  # drop trailing "}" (empty when unlabelled)
        if seen_types.get(base) != "histogram":
            lines.append(f"# TYPE {base} histogram")
            seen_types[base] = "histogram"

        def bucket_line(le: str, cum: int) -> str:
            inner = f'{labels},le="{le}"' if labels else f'le="{le}"'
            return f"{base}_bucket{{{inner}}} {cum}"

        for bound, cum in zip(h["buckets"], h["cumulative"]):
            lines.append(bucket_line(f"{bound:g}", cum))
        lines.append(bucket_line("+Inf", h["count"]))
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{base}_sum{suffix} {h['sum']:g}")
        lines.append(f"{base}_count{suffix} {h['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry, path: str, unified: bool = True
) -> None:
    snap = registry.unified_snapshot() if unified else registry.snapshot()
    _write(path, prometheus_text(snap))


# ----------------------------------------------------------------------
def _write(path: str, text: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
