"""Span-based pipeline tracer (NVTX/nvprof-style) for the SpMV simulator.

The tracer answers "where did the bytes and cycles go" for a *whole*
pipeline run — matrix generate/load, format conversion, delta-encode and
bit-pack, reordering, sealing, verified dispatch, the kernel itself and
its reductions — by recording one :class:`Span` per instrumented region.
Spans nest (a ``spmv.dispatch`` span contains a ``verify.checksum`` span
and a ``kernel.bro_ell`` span), carry free-form attributes, and can have a
:class:`~repro.gpu.counters.KernelCounters` record and a timing-model
attribution (``t_mem``/``t_flop``/``t_decode``/``t_launch``) attached.

Zero overhead when disabled
---------------------------
Tracing is off by default. :func:`span` then returns a process-wide
singleton no-op context manager — no object is allocated, no clock is
read, nothing is recorded — so instrumented hot paths (every simulated
kernel launch) cost one global load and one ``is None`` test. Hot callers
that would otherwise build an attribute dict should guard on
:func:`get_tracer` first (see ``repro.kernels.base``).

Typical use::

    from repro import telemetry

    with telemetry.tracing() as tracer:
        result = run_spmv(matrix, x, "k20",
                          policy=ExecutionPolicy(verify="checksum"))
    for s in tracer.spans:
        print(s.name, s.duration_us)
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
]


class NullSpan:
    """The shared no-op span: every method returns ``self`` and records
    nothing. One instance (:data:`NULL_SPAN`) serves the whole process so
    the disabled tracer allocates no memory per call."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> "NullSpan":
        return self

    def attach_counters(self, counters: Any) -> "NullSpan":
        return self

    def attach_timing(self, timing: Any) -> "NullSpan":
        return self


#: Process-wide no-op span returned by :func:`span` while tracing is off.
NULL_SPAN = NullSpan()


class Span:
    """One recorded region of the pipeline.

    Spans are created by :meth:`Tracer.start` (usually via the module-level
    :func:`span` helper) and finished by leaving their ``with`` block; the
    tracer keeps them in start order.
    """

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "depth",
        "t_start",
        "t_end",
        "attrs",
        "counters",
        "timing",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        t_start: float,
        tracer: "Tracer",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: Any = None
        self.timing: Optional[Dict[str, float]] = None
        self.events: List[Dict[str, Any]] = []
        self._tracer = tracer

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer.finish(self)
        return False

    # -- annotation API -------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach free-form attributes (merged into :attr:`attrs`)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> "Span":
        """Record a point-in-time event inside the span (e.g. an integrity
        detection or a fallback decision)."""
        self.events.append(
            {"name": name, "ts": self._tracer.clock(), **attrs}
        )
        return self

    def attach_counters(self, counters: Any) -> "Span":
        """Attach a :class:`~repro.gpu.counters.KernelCounters` record."""
        self.counters = counters
        return self

    def attach_timing(self, timing: Any) -> "Span":
        """Attach a timing-model attribution.

        Accepts a :class:`~repro.gpu.timing.TimingBreakdown` (or any object
        with ``t_mem``/``t_flop``/``t_decode``/``t_launch``) or a plain
        mapping; stored as a flat dict of floats.
        """
        if timing is None:
            return self
        if isinstance(timing, dict):
            self.timing = {k: float(v) for k, v in timing.items()}
            return self
        att = {
            "t_mem": timing.t_mem,
            "t_flop": timing.t_flop,
            "t_decode": timing.t_decode,
            "t_launch": timing.t_launch,
            "time": timing.time,
            "occupancy": timing.occupancy,
        }
        self.timing = {k: float(v) for k, v in att.items()}
        return self

    # -- derived --------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock duration in seconds (0.0 while unfinished)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def duration_us(self) -> float:
        """Wall-clock duration in microseconds."""
        return self.duration * 1e6

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of the span (used by the exporters)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "ts_us": (self.t_start - self._tracer.t0) * 1e6,
            "dur_us": self.duration_us,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.counters is not None:
            c = self.counters
            out["counters"] = {
                "index_bytes": int(c.index_bytes),
                "value_bytes": int(c.value_bytes),
                "x_bytes": int(c.x_bytes),
                "y_bytes": int(c.y_bytes),
                "aux_bytes": int(c.aux_bytes),
                "dram_bytes": int(c.dram_bytes),
                "useful_flops": int(c.useful_flops),
                "issued_flops": int(c.issued_flops),
                "decode_ops": int(c.decode_ops),
                "launches": int(c.launches),
                "threads": int(c.threads),
            }
        if self.timing is not None:
            out["timing"] = self.timing
        if self.events:
            events = []
            for e in self.events:
                e = dict(e)
                if "ts" in e:
                    e["ts_us"] = (e.pop("ts") - self._tracer.t0) * 1e6
                events.append(e)
            out["events"] = events
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, depth={self.depth}, "
            f"dur={self.duration_us:.1f}us)"
        )


class Tracer:
    """Collects spans for one traced pipeline run.

    Parameters
    ----------
    clock:
        Monotonic time source in seconds. Injectable so tests and golden
        files get deterministic timestamps; defaults to
        :func:`time.perf_counter`.
    trace_id:
        Hex identifier shared by every span of one distributed trace.
        Propagated to worker processes so their spans can be grafted back
        under the coordinator's tree; autogenerated when omitted.

    ``t0_wall`` anchors the monotonic origin ``t0`` to wall-clock time so
    spans recorded in *another process* (whose ``perf_counter`` origin is
    unrelated) can be rebased onto this tracer's timeline:
    ``offset = remote.t0_wall - local.t0_wall``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ) -> None:
        self.clock = clock
        self.t0 = clock()
        self.t0_wall = time.time()
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex
        self.spans: List[Span] = []  # completed + in-flight, in start order
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        category: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span nested under the current innermost open span."""
        parent = self._stack[-1] if self._stack else None
        s = Span(
            name=name,
            category=category,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            t_start=self.clock(),
            tracer=self,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(s)
        self._stack.append(s)
        return s

    def finish(self, s: Span) -> None:
        """Close a span (normally via its ``with`` block)."""
        s.t_end = self.clock()
        if self._stack and self._stack[-1] is s:
            self._stack.pop()
        elif s in self._stack:  # mismatched exit: unwind to the span
            while self._stack and self._stack[-1] is not s:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Spans started but not yet finished."""
        return len(self._stack)

    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any region."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, parent: Span) -> List[Span]:
        """Direct children of a span, in start order."""
        return [s for s in self.spans if s.parent_id == parent.span_id]

    def clear(self) -> None:
        """Drop all recorded spans (keeps the clock origin)."""
        self.spans.clear()
        self._stack.clear()
        self._next_id = 0


#: The active tracer, or None while tracing is disabled.
_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the active tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def disable_tracing() -> None:
    """Remove the active tracer; :func:`span` becomes a no-op again."""
    global _TRACER
    _TRACER = None


def span(name: str, category: str = "", **attrs: Any):
    """Open a traced region; the module-level entry point.

    Returns the :data:`NULL_SPAN` singleton while tracing is disabled, so
    ``with span("encode.bro_ell"): ...`` costs nothing on the default path.
    Callers on allocation-critical paths should avoid keyword attributes
    (the ``**attrs`` dict would be built before the enabled check) and
    guard on :func:`get_tracer` instead.
    """
    t = _TRACER
    if t is None:
        return NULL_SPAN
    return t.start(name, category, attrs if attrs else None)
