"""Live health monitor: run a short sharded workload, report SLOs.

``repro health`` drives this module: it executes a few sharded SpMV
calls on the fault-tolerant process backend with distributed telemetry
enabled, then reduces the merged registry + pool state into one SLO
table:

===================  ====================================================
row                  source
===================  ====================================================
per-worker p99       ``exec.shard_latency_seconds{worker=N}`` histograms
                     (exact sliding-window percentiles)
heartbeat age        :meth:`WorkerPool.heartbeat_ages` at probe time
worker deaths        ``exec.worker_deaths`` counter
retries              ``exec.retries`` counter
bandwidth vs         achieved bytes/s of the merged timing model vs the
roofline             device's measured roofline
                     (``timing.bandwidth_utilization``)
===================  ====================================================

Each row carries its threshold and an ok/breach verdict;
:meth:`HealthReport.healthy` is False when any row breaches, which the
CLI turns into a nonzero exit — the shape a liveness/readiness probe or
a CI smoke wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ValidationError
from .metrics import MetricsRegistry, _parse_key

__all__ = ["HealthThresholds", "HealthReport", "run_health_check"]


@dataclass(frozen=True)
class HealthThresholds:
    """SLO limits; ``None`` disables the corresponding check."""

    max_p99_ms: Optional[float] = 2000.0
    max_heartbeat_age_s: Optional[float] = 2.0
    max_worker_deaths: Optional[int] = 0
    max_retries: Optional[int] = 0
    min_bw_utilization: Optional[float] = 0.05


@dataclass
class HealthReport:
    """Outcome of one health probe: SLO rows plus run context."""

    matrix: str
    devices: int
    device: str
    calls: int
    rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return all(r["ok"] for r in self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matrix": self.matrix,
            "devices": self.devices,
            "device": self.device,
            "calls": self.calls,
            "healthy": self.healthy,
            "rows": list(self.rows),
        }


def _check(
    rows: List[Dict[str, Any]],
    check: str,
    value: float,
    threshold: Optional[float],
    *,
    lower_is_better: bool = True,
    **context: Any,
) -> None:
    if threshold is None:
        ok = True
    elif lower_is_better:
        ok = value <= threshold
    else:
        ok = value >= threshold
    rows.append(
        {
            "check": check,
            "value": float(value),
            "threshold": None if threshold is None else float(threshold),
            "ok": bool(ok),
            **context,
        }
    )


def run_health_check(
    matrix: str = "cant",
    scale: float = 0.05,
    format_name: str = "csr",
    device: str = "k20",
    devices: int = 4,
    calls: int = 3,
    thresholds: HealthThresholds = HealthThresholds(),
) -> HealthReport:
    """Probe the sharded process backend and grade it against SLOs.

    Runs ``calls`` sharded SpMV calls with distributed telemetry routed
    into a private registry (the process-wide telemetry state is
    restored afterwards), then grades per-worker p99 latency, heartbeat
    freshness, recovery counters and roofline utilization.
    """
    from ..bench.harness import cached_format
    from ..exec.engine import execute_sharded, sharded_view, shutdown_pools
    from ..exec.policy import ExecutionPolicy
    from ..exec.workers import worker_pool
    from ..gpu.device import get_device
    from . import metrics as _metrics

    if devices < 2:
        raise ValidationError("health probe needs a sharded run (devices >= 2)")
    if calls < 1:
        raise ValidationError("health probe needs at least one call")

    mat = cached_format(matrix, scale, format_name)
    x = np.random.default_rng(7).standard_normal(mat.shape[1])
    dev = get_device(device)
    policy = ExecutionPolicy(devices=devices, backend="process")

    registry = MetricsRegistry()
    prev_collecting = _metrics.collecting()
    prev_registry = _metrics.registry() if prev_collecting else None
    _metrics.start_collecting(registry)
    try:
        result = None
        for _ in range(calls):
            result = execute_sharded(mat, x, dev, policy)
        sharded = sharded_view(mat, devices, policy.partitioner)
        heartbeat_ages = worker_pool(sharded, dev, policy).heartbeat_ages()
    finally:
        if prev_collecting:
            _metrics.start_collecting(prev_registry)
        else:
            _metrics.stop_collecting()
        shutdown_pools(mat)

    snap = registry.snapshot()
    report = HealthReport(
        matrix=matrix, devices=devices, device=dev.name, calls=calls
    )

    # Per-worker p99 from the coordinator-side latency histograms.
    hist = MetricsRegistry()
    hist.merge(snap)
    with hist._lock:
        latency = {
            k: h for k, h in hist._histograms.items()
            if k.startswith("exec.shard_latency_seconds")
        }
    for key in sorted(latency):
        _, labels = _parse_key(key)
        _check(
            report.rows,
            "worker_p99_ms",
            1e3 * latency[key].percentile(99),
            thresholds.max_p99_ms,
            worker=labels.get("worker", "?"),
        )

    for slot, age in enumerate(heartbeat_ages):
        _check(
            report.rows,
            "heartbeat_age_s",
            age,
            thresholds.max_heartbeat_age_s,
            worker=str(slot),
        )

    counters = snap.get("counters", {})
    _check(
        report.rows, "worker_deaths",
        counters.get("exec.worker_deaths", 0.0),
        None if thresholds.max_worker_deaths is None
        else float(thresholds.max_worker_deaths),
    )
    _check(
        report.rows, "retries",
        counters.get("exec.retries", 0.0),
        None if thresholds.max_retries is None
        else float(thresholds.max_retries),
    )

    timing = result.timing  # modeled roofline attribution of the last call
    _check(
        report.rows, "bandwidth_utilization",
        timing.bandwidth_utilization,
        thresholds.min_bw_utilization,
        lower_is_better=False,
        achieved_bw_gbps=float(timing.achieved_bw_gbps),
        roofline_bw_gbps=float(dev.measured_bw_gbps),
        bound=timing.bound,
    )
    return report
