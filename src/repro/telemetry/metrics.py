"""Unified metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` gathers everything the simulator can measure
behind a single snapshot API:

* per-kernel :class:`~repro.gpu.counters.KernelCounters` totals (DRAM
  bytes by stream, flops, decode ops, launches), labelled by format and
  device — emitted by ``repro.kernels.base.SpMVKernel.run``;
* texture-cache request/fetch statistics from
  :class:`repro.gpu.texcache.TextureCacheModel`;
* bitstream encode statistics from :func:`repro.bitstream.packing.pack_slice`
  and :func:`~repro.bitstream.packing.unpack_slice`;
* the per-process integrity counters
  (:data:`repro.integrity.counters.COUNTERS`), folded in at snapshot time.

Collection is off by default; hot-path emitters check :func:`collecting`
(one module-global read) before doing any work, so the disabled path stays
allocation-free. ``telemetry.enable()`` switches both tracing and metric
collection on together.
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import Any, Deque, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "registry",
    "collecting",
    "start_collecting",
    "stop_collecting",
    "record_kernel",
    "record_texcache",
    "record_bitstream_encode",
    "record_bitstream_decode",
    "record_plan_build",
    "record_plan_cache",
    "record_backend_fallback",
    "record_jit_compile",
    "record_retune",
    "record_exec",
    "record_worker_event",
    "record_shard_latency",
    "merge_snapshots",
]

#: Default histogram buckets for byte-sized observations (powers of 4).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0 ** k for k in range(2, 14))

#: Buckets for latency observations in seconds (10us .. ~84s, powers of 4).
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-5 * 4.0 ** k for k in range(12))

#: Sliding-window size of raw samples retained per histogram for exact
#: percentiles. Bounded so long-lived registries stay O(1) per series.
DEFAULT_WINDOW = 2048


def _escape_label_value(value: str) -> str:
    """Escape a label value for the canonical series key (and for the
    Prometheus text format, which uses the same ``\\``/``"``/newline
    escapes)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _label_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Canonical series key: ``name`` or ``name{a="x",b="y"}`` (sorted,
    label values escaped so quotes/backslashes/newlines stay parseable)."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def _parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_label_key`: ``name{a="x"}`` -> (name, {"a": "x"})."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    if not rest.endswith("}"):
        raise ValidationError(f"malformed series key {key!r}")
    labels: Dict[str, str] = {}
    body = rest[:-1]
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        label = body[i:eq]
        if body[eq + 1] != '"':
            raise ValidationError(f"malformed series key {key!r}")
        j = eq + 2
        raw = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                raw.append(body[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValidationError(f"malformed series key {key!r}")
        labels[label] = _unescape_label_value("".join(raw))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return name, labels


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics) with a bounded
    sliding window of raw samples for exact percentiles.

    The buckets serve the Prometheus exposition; :meth:`percentile`
    interpolates on the retained raw samples (the most recent ``window``
    observations) with NumPy's default linear method, so ``percentile(q)``
    is exactly ``numpy.percentile(samples, q)``.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "samples")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        b = sorted(float(x) for x in buckets)
        if not b:
            raise ValidationError("histogram needs at least one bucket bound")
        if window < 1:
            raise ValidationError("histogram window must be >= 1")
        self.buckets: Tuple[float, ...] = tuple(b)
        self.counts = [0] * (len(b) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0
        self.samples: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        self.samples.append(value)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile of the retained samples, q in [0, 100].

        Linear interpolation between closest ranks — bit-identical to
        ``numpy.percentile`` (default method) on the same window.
        """
        import numpy as np

        if not 0.0 <= q <= 100.0:
            raise ValidationError(f"percentile q must be in [0, 100], got {q!r}")
        if not self.samples:
            raise ValidationError(
                "histogram has no retained samples to take a percentile of"
            )
        return float(np.percentile(np.fromiter(self.samples, dtype=float), q))

    def merge_dict(self, other: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot of another histogram into this
        one (bucket bounds must match)."""
        if tuple(float(b) for b in other["buckets"]) != self.buckets:
            raise ValidationError(
                "cannot merge histograms with different bucket bounds"
            )
        cumulative = other["cumulative"]
        previous = 0
        for i, cum in enumerate(cumulative):
            self.counts[i] += cum - previous
            previous = cum
        self.counts[-1] += other["count"] - previous
        self.sum += other["sum"]
        self.count += other["count"]
        for v in other.get("samples", ()):
            self.samples.append(float(v))

    def to_dict(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for c in self.counts[:-1]:
            running += c
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "cumulative": cumulative,
            "sum": self.sum,
            "count": self.count,
            "samples": list(self.samples),
        }


class MetricsRegistry:
    """Thread-safe named registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = _label_key(name, labels)
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter()
            return c

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = _label_key(name, labels)
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge()
            return g

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = _label_key(name, labels)
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(buckets)
            return h

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Consistent copy: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` keyed by the canonical series key."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def unified_snapshot(self) -> Dict[str, Any]:
        """:meth:`snapshot` plus the per-process integrity counters.

        The integrity layer predates the registry and keeps its own
        process-scope counters; this folds them in as gauges so one call
        sees the whole system.
        """
        snap = self.snapshot()
        from ..integrity.counters import COUNTERS  # lazy: avoid cycle

        integrity = COUNTERS.snapshot()
        snap["gauges"].update(
            {
                "integrity.verifications": float(integrity.verifications),
                "integrity.detections": float(integrity.detections),
                "integrity.fallbacks": float(integrity.fallbacks),
                "integrity.raised": float(integrity.raised),
            }
        )
        return snap

    def merge(
        self,
        snapshot: Mapping[str, Any],
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        ``labels`` (e.g. ``{"worker": "2"}``) are added to every merged
        series, so per-worker snapshots land as distinct labelled series
        instead of colliding with the coordinator's own. Counters and
        gauges add; histograms merge bucket counts, sums and retained
        samples. Merging the snapshots of N disjoint registries therefore
        yields exactly the sum of the N snapshots (the merged-equals-sum
        invariant exercised by the distributed-telemetry tests).
        """
        extra = dict(labels) if labels else {}
        for key, value in snapshot.get("counters", {}).items():
            name, lbl = _parse_key(key)
            lbl.update(extra)
            self.counter(name, lbl).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, lbl = _parse_key(key)
            lbl.update(extra)
            self.gauge(name, lbl).inc(value)
        for key, d in snapshot.get("histograms", {}).items():
            name, lbl = _parse_key(key)
            lbl.update(extra)
            self.histogram(name, lbl, buckets=d["buckets"]).merge_dict(d)

    def reset(self) -> None:
        """Drop every registered series (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry.
REGISTRY = MetricsRegistry()

#: Registry currently receiving hot-path emissions (None = collection off).
_ACTIVE: Optional[MetricsRegistry] = None


def registry() -> MetricsRegistry:
    """The registry receiving emissions, or the default one when off."""
    return _ACTIVE if _ACTIVE is not None else REGISTRY


def collecting() -> bool:
    """True while hot-path metric emission is switched on."""
    return _ACTIVE is not None


def start_collecting(target: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch hot-path emission on, optionally into a private registry."""
    global _ACTIVE
    _ACTIVE = target if target is not None else REGISTRY
    return _ACTIVE


def stop_collecting() -> None:
    """Switch hot-path emission off."""
    global _ACTIVE
    _ACTIVE = None


# ----------------------------------------------------------------------
# Hot-path emission helpers. Each checks `collecting()` first so the
# disabled path is one global read; callers may also guard themselves.
# ----------------------------------------------------------------------
def record_kernel(format_name: str, device_name: str, counters: Any) -> None:
    """Fold one kernel launch's :class:`KernelCounters` into the registry."""
    reg = _ACTIVE
    if reg is None:
        return
    labels = {"format": format_name, "device": device_name}
    reg.counter("kernel.launches", labels).inc(counters.launches or 1)
    reg.counter("kernel.dram_bytes", labels).inc(counters.dram_bytes)
    reg.counter("kernel.index_bytes", labels).inc(counters.index_bytes)
    reg.counter("kernel.value_bytes", labels).inc(counters.value_bytes)
    reg.counter("kernel.x_bytes", labels).inc(counters.x_bytes)
    reg.counter("kernel.y_bytes", labels).inc(counters.y_bytes)
    reg.counter("kernel.aux_bytes", labels).inc(counters.aux_bytes)
    reg.counter("kernel.useful_flops", labels).inc(counters.useful_flops)
    reg.counter("kernel.issued_flops", labels).inc(counters.issued_flops)
    reg.counter("kernel.decode_ops", labels).inc(counters.decode_ops)
    reg.histogram("kernel.dram_bytes_per_launch", labels).observe(
        counters.dram_bytes
    )


def record_texcache(requests: int, fetches: int, line_bytes: int) -> None:
    """Texture-cache statistics for one block/warp access pattern."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter("texcache.requests").inc(requests)
    reg.counter("texcache.fetches").inc(fetches)
    reg.counter("texcache.hits").inc(max(0, requests - fetches))
    reg.counter("texcache.bytes").inc(fetches * line_bytes)


def record_bitstream_encode(symbols: int, payload_bits: int) -> None:
    """One packed slice/interval on the encode side."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter("bitstream.slices_encoded").inc()
    reg.counter("bitstream.symbols_written").inc(symbols)
    reg.counter("bitstream.payload_bits").inc(payload_bits)


def record_bitstream_decode(symbols: int) -> None:
    """One unpacked slice/interval on the host-side decode path."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter("bitstream.slices_decoded").inc()
    reg.counter("bitstream.symbols_read").inc(symbols)


def record_plan_build(format_name: str, device_name: str, seconds: float) -> None:
    """One prepared-plan build (the one-time decode + accounting pass)."""
    reg = _ACTIVE
    if reg is None:
        return
    labels = {"format": format_name, "device": device_name}
    reg.counter("plan.builds", labels).inc()
    reg.counter("plan.build_seconds", labels).inc(seconds)


def record_exec(
    format_name: str,
    device_name: str,
    devices: int,
    counters: Any,
    comms: Any = None,
) -> None:
    """One sharded multi-device execution (merged view).

    The per-shard launches already emitted through :func:`record_kernel`;
    this adds the engine-level series — executions by shard count and the
    modeled interconnect traffic — so dashboards can separate kernel
    work from communication.
    """
    reg = _ACTIVE
    if reg is None:
        return
    labels = {
        "format": format_name,
        "device": device_name,
        "devices": str(devices),
    }
    reg.counter("exec.sharded_runs", labels).inc()
    reg.counter("exec.interconnect_bytes", labels).inc(
        counters.interconnect_bytes
    )
    if comms is not None:
        reg.counter(f"exec.comms_{comms.strategy}_runs", labels).inc()
        reg.counter("exec.messages", labels).inc(comms.messages)


def record_worker_event(event: str, count: int = 1) -> None:
    """A process-pool recovery event: worker_deaths, shard_reassignments,
    retries or respawns — emitted once per sharded call with the call's
    recovery totals, so dashboards see ``exec.worker_deaths`` etc."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter(f"exec.{event}").inc(count)


def record_shard_latency(worker: str, seconds: float) -> None:
    """One shard call's wallclock, recorded into the per-worker latency
    histogram ``exec.shard_latency_seconds{worker=...}`` (p50/p95/p99 via
    :meth:`Histogram.percentile`)."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.histogram(
        "exec.shard_latency_seconds",
        {"worker": str(worker)},
        buckets=LATENCY_BUCKETS,
    ).observe(seconds)


def merge_snapshots(snapshots: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Pure sum of registry snapshots (no labelling): counters and gauges
    add per key; histograms merge per key. Used to state the
    merged-equals-sum invariant independently of :meth:`MetricsRegistry.merge`.
    """
    reg = MetricsRegistry()
    for snap in snapshots:
        reg.merge(snap)
    return reg.snapshot()


def record_plan_cache(event: str, count: int = 1) -> None:
    """A plan-cache lifecycle event: hits/misses/builds/evictions/invalidations."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter(f"plan_cache.{event}").inc(count)


def record_backend_fallback(format_name: str, reason: str) -> None:
    """An explicit ``compute_backend="jit"`` request served by numpy.

    Emitted by :func:`repro.kernels.backends.resolve_backend` when the
    compiled path is unavailable (Numba missing, or the format has no
    compiled loops) — the degradation is silent in results but visible
    here as ``exec.backend_fallback{format=..., reason=...}``.
    """
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter(
        "exec.backend_fallback", {"format": format_name, "reason": reason}
    ).inc()


def record_jit_compile(format_name: str, device_name: str, seconds: float) -> None:
    """One warm-compile pass of a plan's compiled replay at prepare() time."""
    reg = _ACTIVE
    if reg is None:
        return
    labels = {"format": format_name, "device": device_name}
    reg.counter("plan.jit_builds", labels).inc()
    reg.counter("plan.jit_compile_seconds", labels).inc(seconds)


def record_retune(event: str, format_name: str = "", count: int = 1) -> None:
    """An online-autotuning lifecycle event (``exec.retune.<event>``).

    Events: ``evaluations`` (a retune window closed and was scored),
    ``triggered`` (the session was re-planned onto a new candidate),
    ``kept`` (the current configuration is already the measured best) and
    ``skipped_hysteresis`` (a predicted win existed but was under the
    hysteresis threshold).
    """
    reg = _ACTIVE
    if reg is None:
        return
    labels = {"format": format_name} if format_name else None
    reg.counter(f"exec.retune.{event}", labels).inc(count)
