"""Unified metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` gathers everything the simulator can measure
behind a single snapshot API:

* per-kernel :class:`~repro.gpu.counters.KernelCounters` totals (DRAM
  bytes by stream, flops, decode ops, launches), labelled by format and
  device — emitted by ``repro.kernels.base.SpMVKernel.run``;
* texture-cache request/fetch statistics from
  :class:`repro.gpu.texcache.TextureCacheModel`;
* bitstream encode statistics from :func:`repro.bitstream.packing.pack_slice`
  and :func:`~repro.bitstream.packing.unpack_slice`;
* the per-process integrity counters
  (:data:`repro.integrity.counters.COUNTERS`), folded in at snapshot time.

Collection is off by default; hot-path emitters check :func:`collecting`
(one module-global read) before doing any work, so the disabled path stays
allocation-free. ``telemetry.enable()`` switches both tracing and metric
collection on together.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "registry",
    "collecting",
    "start_collecting",
    "stop_collecting",
    "record_kernel",
    "record_texcache",
    "record_bitstream_encode",
    "record_bitstream_decode",
    "record_plan_build",
    "record_plan_cache",
    "record_exec",
    "record_worker_event",
]

#: Default histogram buckets for byte-sized observations (powers of 4).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0 ** k for k in range(2, 14))


def _label_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Canonical series key: ``name`` or ``name{a="x",b="y"}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        b = sorted(float(x) for x in buckets)
        if not b:
            raise ValidationError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = tuple(b)
        self.counts = [0] * (len(b) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for c in self.counts[:-1]:
            running += c
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "cumulative": cumulative,
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe named registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = _label_key(name, labels)
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter()
            return c

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = _label_key(name, labels)
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge()
            return g

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = _label_key(name, labels)
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(buckets)
            return h

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Consistent copy: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` keyed by the canonical series key."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def unified_snapshot(self) -> Dict[str, Any]:
        """:meth:`snapshot` plus the per-process integrity counters.

        The integrity layer predates the registry and keeps its own
        process-scope counters; this folds them in as gauges so one call
        sees the whole system.
        """
        snap = self.snapshot()
        from ..integrity.counters import COUNTERS  # lazy: avoid cycle

        integrity = COUNTERS.snapshot()
        snap["gauges"].update(
            {
                "integrity.verifications": float(integrity.verifications),
                "integrity.detections": float(integrity.detections),
                "integrity.fallbacks": float(integrity.fallbacks),
                "integrity.raised": float(integrity.raised),
            }
        )
        return snap

    def reset(self) -> None:
        """Drop every registered series (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry.
REGISTRY = MetricsRegistry()

#: Registry currently receiving hot-path emissions (None = collection off).
_ACTIVE: Optional[MetricsRegistry] = None


def registry() -> MetricsRegistry:
    """The registry receiving emissions, or the default one when off."""
    return _ACTIVE if _ACTIVE is not None else REGISTRY


def collecting() -> bool:
    """True while hot-path metric emission is switched on."""
    return _ACTIVE is not None


def start_collecting(target: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch hot-path emission on, optionally into a private registry."""
    global _ACTIVE
    _ACTIVE = target if target is not None else REGISTRY
    return _ACTIVE


def stop_collecting() -> None:
    """Switch hot-path emission off."""
    global _ACTIVE
    _ACTIVE = None


# ----------------------------------------------------------------------
# Hot-path emission helpers. Each checks `collecting()` first so the
# disabled path is one global read; callers may also guard themselves.
# ----------------------------------------------------------------------
def record_kernel(format_name: str, device_name: str, counters: Any) -> None:
    """Fold one kernel launch's :class:`KernelCounters` into the registry."""
    reg = _ACTIVE
    if reg is None:
        return
    labels = {"format": format_name, "device": device_name}
    reg.counter("kernel.launches", labels).inc(counters.launches or 1)
    reg.counter("kernel.dram_bytes", labels).inc(counters.dram_bytes)
    reg.counter("kernel.index_bytes", labels).inc(counters.index_bytes)
    reg.counter("kernel.value_bytes", labels).inc(counters.value_bytes)
    reg.counter("kernel.x_bytes", labels).inc(counters.x_bytes)
    reg.counter("kernel.y_bytes", labels).inc(counters.y_bytes)
    reg.counter("kernel.aux_bytes", labels).inc(counters.aux_bytes)
    reg.counter("kernel.useful_flops", labels).inc(counters.useful_flops)
    reg.counter("kernel.issued_flops", labels).inc(counters.issued_flops)
    reg.counter("kernel.decode_ops", labels).inc(counters.decode_ops)
    reg.histogram("kernel.dram_bytes_per_launch", labels).observe(
        counters.dram_bytes
    )


def record_texcache(requests: int, fetches: int, line_bytes: int) -> None:
    """Texture-cache statistics for one block/warp access pattern."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter("texcache.requests").inc(requests)
    reg.counter("texcache.fetches").inc(fetches)
    reg.counter("texcache.hits").inc(max(0, requests - fetches))
    reg.counter("texcache.bytes").inc(fetches * line_bytes)


def record_bitstream_encode(symbols: int, payload_bits: int) -> None:
    """One packed slice/interval on the encode side."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter("bitstream.slices_encoded").inc()
    reg.counter("bitstream.symbols_written").inc(symbols)
    reg.counter("bitstream.payload_bits").inc(payload_bits)


def record_bitstream_decode(symbols: int) -> None:
    """One unpacked slice/interval on the host-side decode path."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter("bitstream.slices_decoded").inc()
    reg.counter("bitstream.symbols_read").inc(symbols)


def record_plan_build(format_name: str, device_name: str, seconds: float) -> None:
    """One prepared-plan build (the one-time decode + accounting pass)."""
    reg = _ACTIVE
    if reg is None:
        return
    labels = {"format": format_name, "device": device_name}
    reg.counter("plan.builds", labels).inc()
    reg.counter("plan.build_seconds", labels).inc(seconds)


def record_exec(
    format_name: str,
    device_name: str,
    devices: int,
    counters: Any,
    comms: Any = None,
) -> None:
    """One sharded multi-device execution (merged view).

    The per-shard launches already emitted through :func:`record_kernel`;
    this adds the engine-level series — executions by shard count and the
    modeled interconnect traffic — so dashboards can separate kernel
    work from communication.
    """
    reg = _ACTIVE
    if reg is None:
        return
    labels = {
        "format": format_name,
        "device": device_name,
        "devices": str(devices),
    }
    reg.counter("exec.sharded_runs", labels).inc()
    reg.counter("exec.interconnect_bytes", labels).inc(
        counters.interconnect_bytes
    )
    if comms is not None:
        reg.counter(f"exec.comms_{comms.strategy}_runs", labels).inc()
        reg.counter("exec.messages", labels).inc(comms.messages)


def record_worker_event(event: str, count: int = 1) -> None:
    """A process-pool recovery event: worker_deaths, shard_reassignments,
    retries or respawns — emitted once per sharded call with the call's
    recovery totals, so dashboards see ``exec.worker_deaths`` etc."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter(f"exec.{event}").inc(count)


def record_plan_cache(event: str, count: int = 1) -> None:
    """A plan-cache lifecycle event: hits/misses/builds/evictions/invalidations."""
    reg = _ACTIVE
    if reg is None:
        return
    reg.counter(f"plan_cache.{event}").inc(count)
