"""Cross-process telemetry: worker-side capture and coordinator-side merge.

The process backend (``ExecutionPolicy(backend="process")``) runs each
shard inside a separate worker process. Spans and metric samples recorded
there would die with the worker, so this module defines the wire format
and the two halves of the distributed-telemetry pipeline:

**Worker side** (:func:`capture`, :func:`build_batch`) — each task that
arrives with a trace context ``(trace_id, parent_span_id)`` runs under a
private :class:`~repro.telemetry.tracer.Tracer` and
:class:`~repro.telemetry.metrics.MetricsRegistry`, then ships one *batch*
dict over the pool's dedicated telemetry queue (alongside, never inside,
the result message)::

    {
      "worker": 2,                # worker slot (one lane per worker)
      "pid": 41234,               # OS pid of the worker process
      "shard": 2, "attempt": 0,   # which task produced this batch
      "trace_id": "9f3a...",      # propagated from the coordinator
      "parent_span_id": 7,        # coordinator span the roots nest under
      "t0_wall": 1723e9,          # wall-clock anchor of the worker tracer
      "spans": [Span.to_dict()],  # ts_us relative to the worker's t0
      "snapshot": registry.snapshot(),
      "elapsed_s": 0.0123,        # shard call wallclock
    }

**Coordinator side** (:func:`graft_spans`, :func:`merge_batches`) —
accepted batches (matching the shard/attempt the coordinator actually
used; stale retry attempts are dropped) are grafted into the live tracer
with ids remapped and timestamps rebased through the wall-clock anchors
(``offset = batch.t0_wall - local.t0_wall``; ``perf_counter`` origins are
per-process and otherwise incomparable), and their registry snapshots are
folded into the coordinator registry via
:meth:`MetricsRegistry.merge(snapshot, labels={"worker": ...})
<repro.telemetry.metrics.MetricsRegistry.merge>`.

The merged registry provably equals the sum of the per-worker snapshots
(see :func:`repro.telemetry.metrics.merge_snapshots`), and the grafted
spans carry ``worker``/``worker_pid`` attributes that the Chrome-trace
exporter turns into one process lane per worker.

Zero-overhead contract: when telemetry is disabled the coordinator sends
``None`` as the trace context, the worker skips capture entirely, and no
message is ever put on the telemetry queue.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "capture",
    "build_batch",
    "graft_spans",
    "merge_batches",
]


class capture:
    """Worker-side scoped capture for one task.

    Context manager that creates a private tracer (inheriting the
    coordinator's ``trace_id``) and registry, and exposes them as
    ``cap.tracer`` / ``cap.registry``. The task body runs under a root
    span named ``worker.task`` so every kernel/verify span the dispatch
    layer opens nests beneath it.
    """

    __slots__ = ("tracer", "registry", "trace_id", "root")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.tracer = Tracer(trace_id=trace_id)
        self.registry = MetricsRegistry()
        self.root: Optional[Span] = None

    def __enter__(self) -> "capture":
        from . import metrics, tracer as tracer_mod

        tracer_mod.enable_tracing(self.tracer)
        metrics.start_collecting(self.registry)
        self.root = self.tracer.start("worker.task", category="worker")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        from . import metrics, tracer as tracer_mod

        if self.root is not None:
            if exc_type is not None:
                self.root.attrs.setdefault(
                    "error", f"{exc_type.__name__}: {exc}"
                )
            self.tracer.finish(self.root)
        tracer_mod.disable_tracing()
        metrics.stop_collecting()
        return False


def build_batch(
    cap: capture,
    *,
    worker: int,
    shard: int,
    attempt: int,
    parent_span_id: Optional[int],
    elapsed_s: float,
) -> Dict[str, Any]:
    """Serialize one task's capture into the wire-format batch dict."""
    return {
        "worker": int(worker),
        "pid": os.getpid(),
        "shard": int(shard),
        "attempt": int(attempt),
        "trace_id": cap.trace_id,
        "parent_span_id": parent_span_id,
        "t0_wall": cap.tracer.t0_wall,
        "spans": [s.to_dict() for s in cap.tracer.spans],
        "snapshot": cap.registry.snapshot(),
        "elapsed_s": float(elapsed_s),
    }


def _rebuild_counters(d: Mapping[str, Any]) -> Any:
    """Reconstruct a KernelCounters from a Span.to_dict counters block.

    ``to_dict`` serializes a field subset, so filter to the dataclass's
    declared fields rather than splatting blindly.
    """
    from ..gpu.counters import KernelCounters

    names = {f.name for f in dataclasses.fields(KernelCounters)}
    return KernelCounters(**{k: int(v) for k, v in d.items() if k in names})


def graft_spans(
    tracer: Tracer,
    batch: Mapping[str, Any],
    parent: Optional[Span] = None,
) -> List[Span]:
    """Graft a worker batch's spans into a live coordinator tracer.

    Span ids are remapped into the coordinator's id space, parent links
    are preserved within the batch, root spans are attached to ``parent``
    (or, failing that, to the batch's ``parent_span_id`` if that span is
    still known to the tracer), and timestamps are rebased through the
    wall-clock anchors so worker spans land on the coordinator timeline.
    Every grafted span gains ``worker``/``worker_pid``/``trace_id``
    attributes — the Chrome-trace exporter keys its per-worker process
    lanes off these. Returns the grafted spans in start order.
    """
    offset_s = float(batch["t0_wall"]) - tracer.t0_wall
    if parent is None and batch.get("parent_span_id") is not None:
        wanted = batch["parent_span_id"]
        for s in tracer.spans:
            if s.span_id == wanted:
                parent = s
                break
    base_depth = parent.depth + 1 if parent is not None else 0

    id_map: Dict[int, int] = {}
    grafted: List[Span] = []
    for d in batch["spans"]:
        new_id = tracer._next_id
        tracer._next_id += 1
        id_map[d["span_id"]] = new_id
        old_parent = d.get("parent_id")
        if old_parent is not None and old_parent in id_map:
            parent_id = id_map[old_parent]
            depth = base_depth + d.get("depth", 0)
        else:
            parent_id = parent.span_id if parent is not None else None
            depth = base_depth
        t_start = tracer.t0 + offset_s + d["ts_us"] / 1e6
        s = Span(
            name=d["name"],
            category=d.get("category", ""),
            span_id=new_id,
            parent_id=parent_id,
            depth=depth,
            t_start=t_start,
            tracer=tracer,
            attrs=d.get("attrs"),
        )
        s.t_end = t_start + d.get("dur_us", 0.0) / 1e6
        s.attrs.update(
            worker=int(batch["worker"]),
            worker_pid=int(batch["pid"]),
            trace_id=batch.get("trace_id"),
        )
        if "counters" in d:
            s.counters = _rebuild_counters(d["counters"])
        if "timing" in d:
            s.timing = dict(d["timing"])
        if "events" in d:
            s.events = [dict(e) for e in d["events"]]
        tracer.spans.append(s)
        grafted.append(s)
    return grafted


def merge_batches(
    registry: MetricsRegistry,
    batches: Sequence[Mapping[str, Any]],
    device_names: Optional[Sequence[str]] = None,
) -> None:
    """Fold every batch's registry snapshot into ``registry``.

    Each batch's series gain a ``worker=<slot>`` label (and, when
    ``device_names`` is given, ``device=<name>`` for the shard's device),
    so per-worker series stay distinct from the coordinator's own and the
    merged total equals the sum of the per-worker snapshots. Batches are
    merged in worker order for deterministic series creation.
    """
    for batch in sorted(batches, key=lambda b: (b["worker"], b["attempt"])):
        labels = {"worker": str(batch["worker"])}
        if device_names is not None:
            shard = batch.get("shard")
            if shard is not None and 0 <= int(shard) < len(device_names):
                labels["device"] = str(device_names[int(shard)])
        registry.merge(batch["snapshot"], labels)
