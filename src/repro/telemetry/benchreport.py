"""Benchmark reports (``BENCH_<run>.json``) and run-to-run regression checks.

The ``repro bench`` experiments return structured rows; this module
persists them as a versioned JSON report and compares two reports so CI
(and developers) can catch performance regressions of the *simulated*
pipeline — e.g. a kernel change that silently inflates DRAM traffic or
deflates predicted GFlop/s.

Metric direction is inferred from the column name: throughput-like
metrics (``gflops``, ``speedup``, ``eta``, ``bw_util``) regress when they
*drop*; cost-like metrics (``bytes``, ``time``, ``decode``) regress when
they *grow*. Unrecognized numeric columns are reported as *changed* when
they move beyond the threshold but never fail a comparison on their own.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ValidationError

__all__ = [
    "SCHEMA_VERSION",
    "make_report",
    "write_report",
    "load_report",
    "default_report_path",
    "metric_direction",
    "Delta",
    "Comparison",
    "compare_reports",
]

SCHEMA_VERSION = 1

#: Column-name fragments implying "higher is better" (a drop regresses).
_HIGHER_BETTER = ("gflops", "speedup", "eta", "bw_util", "savings", "gain")
#: Column-name fragments implying "lower is better" (a rise regresses).
_LOWER_BETTER = ("bytes", "time", "decode_ops", "silent", "_us", "t_mem",
                 "t_flop", "t_launch")


def metric_direction(name: str) -> int:
    """+1 = higher is better, -1 = lower is better, 0 = informational."""
    low = name.lower()
    for frag in _HIGHER_BETTER:
        if frag in low:
            return 1
    for frag in _LOWER_BETTER:
        if frag in low:
            return -1
    return 0


def default_report_path(run_name: str, directory: str = ".") -> str:
    """The conventional report filename: ``BENCH_<run>.json``."""
    return os.path.join(directory, f"BENCH_{run_name}.json")


def make_report(
    run_name: str,
    rows: Sequence[Dict[str, Any]],
    scale: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a versioned benchmark report from experiment rows."""
    return {
        "schema_version": SCHEMA_VERSION,
        "run": run_name,
        "scale": scale,
        "meta": dict(meta) if meta else {},
        "rows": [dict(r) for r in rows],
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=_json_default)
        fh.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"cannot read benchmark report {path!r}: {exc}")
    if not isinstance(report, dict) or "rows" not in report:
        raise ValidationError(
            f"{path!r} is not a benchmark report (missing 'rows')"
        )
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"{path!r} has schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    return report


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Delta:
    """One (row, metric) difference between baseline and current."""

    row_key: str
    metric: str
    baseline: float
    current: float
    rel_delta: float  #: (current - baseline) / |baseline|
    direction: int  #: +1 higher-better, -1 lower-better, 0 informational
    regression: bool  #: beyond threshold in the *worse* direction

    def row(self) -> Dict[str, Any]:
        return {
            "row": self.row_key,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta_pct": 100.0 * self.rel_delta,
            "status": "REGRESSION" if self.regression else "changed",
        }


@dataclass
class Comparison:
    """Outcome of comparing a current run against a baseline report."""

    run: str
    threshold: float
    deltas: List[Delta] = field(default_factory=list)  #: beyond-threshold only
    missing_rows: List[str] = field(default_factory=list)
    extra_rows: List[str] = field(default_factory=list)
    compared_metrics: int = 0

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def clean(self) -> bool:
        """True when nothing regressed (missing rows count as regressions)."""
        return not self.regressions and not self.missing_rows

    def summary(self) -> str:
        n_reg = len(self.regressions)
        parts = [
            f"{self.compared_metrics} metrics compared at "
            f"threshold {100 * self.threshold:.1f}%",
            f"{len(self.deltas)} beyond threshold",
            f"{n_reg} regression(s)",
        ]
        if self.missing_rows:
            parts.append(f"{len(self.missing_rows)} baseline row(s) missing")
        return ", ".join(parts)


def _row_key(row: Dict[str, Any]) -> str:
    """Identity of a row: its non-numeric fields, sorted by column name."""
    parts = [
        f"{k}={v}"
        for k, v in sorted(row.items())
        if not isinstance(v, (int, float)) or isinstance(v, bool)
    ]
    return "|".join(parts) if parts else "row0"


def _numeric_items(row: Dict[str, Any]) -> Dict[str, float]:
    return {
        k: float(v)
        for k, v in row.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.05,
) -> Comparison:
    """Compare two benchmark reports row-by-row, metric-by-metric.

    Rows are matched on their non-numeric columns (matrix, device, ...).
    A :class:`Delta` is emitted for every shared numeric metric whose
    relative change exceeds ``threshold``; it is a *regression* when the
    metric has a known direction and moved the wrong way. A baseline
    metric of exactly 0 uses absolute change instead.
    """
    if threshold < 0:
        raise ValidationError("threshold must be non-negative")
    base_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    cur_rows = {_row_key(r): r for r in current.get("rows", [])}

    comp = Comparison(run=str(current.get("run", "?")), threshold=threshold)
    comp.missing_rows = sorted(set(base_rows) - set(cur_rows))
    comp.extra_rows = sorted(set(cur_rows) - set(base_rows))

    for key in sorted(set(base_rows) & set(cur_rows)):
        base_m = _numeric_items(base_rows[key])
        cur_m = _numeric_items(cur_rows[key])
        for metric in sorted(set(base_m) & set(cur_m)):
            b, c = base_m[metric], cur_m[metric]
            comp.compared_metrics += 1
            rel = (c - b) / abs(b) if b != 0 else (c - b)
            if abs(rel) <= threshold:
                continue
            direction = metric_direction(metric)
            worse = (direction == 1 and rel < 0) or (direction == -1 and rel > 0)
            comp.deltas.append(
                Delta(
                    row_key=key,
                    metric=metric,
                    baseline=b,
                    current=c,
                    rel_delta=rel,
                    direction=direction,
                    regression=worse,
                )
            )
    return comp


def _json_default(obj: Any) -> Any:
    """Serialize NumPy scalars transparently."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")
