"""Composable BRO codec: delta → bit-width allocation → pack → multiplex.

The paper's core claim is that bit-representation optimization is a
*layer* one can put on top of a sliced storage format, not a property of
any single format. :class:`BROCodec` makes that layer explicit: it owns
the two delta policies (per-column deltas for the ELL family, per-lane
deltas for the COO family), the bit-width allocation, and the
``sym_len``-bit symbol multiplexing. The pre-existing primitives —
:mod:`repro.bitstream.packing`, :mod:`repro.bitstream.multiplex`,
:mod:`repro.bitstream.reader`/``writer`` and :mod:`repro.core.delta` —
are its implementation; the format containers (``bro_ell``, ``bro_coo``,
``bro_hyb``, ``bro_sell``) are thin clients.

Both directions compose the exact same primitive calls the formats used
inline before the refactor, so the produced ``.brx`` payloads are
byte-identical (``tests/core/test_codec_migration.py`` pins this).

Column mode (BRO-ELL / BRO-SELL)
--------------------------------
``encode_columns`` takes one slice's dense ``(h, l)`` column-index block
plus its validity mask, delta-encodes down the columns (1-based running
deltas, 0 marking padding), allocates one bit width per column
(``b_j = max Gamma(delta_j)``) and packs MSB-first into multiplexed
symbols. ``decode_columns`` inverts it.

Lane mode (BRO-COO)
-------------------
``encode_lanes`` takes one interval's ``(w, L)`` lane-arranged row
indices, delta-encodes along lanes (first iteration keeps the absolute
index + 1), allocates a *single* width per interval and packs.
``decode_lanes`` inverts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .multiplex import MultiplexedStream, concat_slices
from .packing import pack_slice, unpack_slice


def _delta():
    # Imported lazily: repro.core's package init pulls in the format
    # containers, which import this module — a top-level import would be
    # circular whichever package initializes first.
    from ..core import delta

    return delta


def _slices():
    from ..core import slices

    return slices

__all__ = ["BROCodec", "COLUMN_DELTA", "LANE_DELTA"]

#: Delta-policy names a codec instance reports (``repro formats`` codec
#: column); column deltas serve the ELL family, lane deltas the COO family.
COLUMN_DELTA = "columns"
LANE_DELTA = "lanes"


@dataclass(frozen=True)
class BROCodec:
    """Bit-representation-optimizing codec for one symbol length.

    Stateless and frozen: a codec is a *policy* (symbol length plus the
    delta/width rules), not a container. The same instance can encode any
    number of slices; the per-matrix state (streams, width tables) lives
    in the format containers.
    """

    sym_len: int = 32

    def __post_init__(self) -> None:
        if self.sym_len not in (32, 64):
            raise ValidationError(
                f"sym_len must be 32 or 64, got {self.sym_len}"
            )

    # -- column mode (ELL family) --------------------------------------
    def encode_columns(
        self, col_block: np.ndarray, valid: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Encode one ``(h, l)`` column-index block.

        Returns ``(symbols, widths)``: the multiplexed symbol block and
        the per-column bit widths (the paper's ``bit_alloc_i``).
        """
        deltas = _delta().delta_encode_columns(col_block, valid)
        widths = _slices().column_bit_alloc(deltas, max_bits=self.sym_len)
        return pack_slice(deltas, widths, sym_len=self.sym_len), widths

    def decode_columns(
        self, stream_view: np.ndarray, widths: np.ndarray, h: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`encode_columns`: ``(col_idx, valid)`` blocks."""
        return _delta().delta_decode_columns(
            self.unpack_deltas(stream_view, widths, h)
        )

    def unpack_deltas(
        self, stream_view: np.ndarray, widths: np.ndarray, h: int
    ) -> np.ndarray:
        """The raw ``(h, l)`` delta block of one packed slice.

        Exposed for repack knobs (e.g. the Section 4.2.1 uniform-width
        experiment) that transform deltas without re-deriving them from
        decoded indices.
        """
        return unpack_slice(stream_view, widths, h, self.sym_len)

    def pack_deltas(
        self, deltas: np.ndarray, widths: np.ndarray
    ) -> np.ndarray:
        """Pack an already-delta-encoded block with explicit widths."""
        return pack_slice(deltas, widths, sym_len=self.sym_len)

    # -- lane mode (COO family) ----------------------------------------
    def encode_lanes(self, rows_2d: np.ndarray) -> Tuple[np.ndarray, int]:
        """Encode one ``(w, L)`` lane-arranged row-index block.

        Returns ``(symbols, width)`` with a *single* bit width for the
        whole interval (the paper's per-interval ``bit_alloc``).
        """
        deltas = _delta().delta_encode_lanes(rows_2d)
        width = _slices().interval_bit_alloc(deltas, max_bits=self.sym_len)
        widths = np.full(rows_2d.shape[1], width, dtype=np.int64)
        return pack_slice(deltas, widths, sym_len=self.sym_len), width

    def decode_lanes(
        self, stream_view: np.ndarray, width: int, lanes: int, iters: int
    ) -> np.ndarray:
        """Inverse of :meth:`encode_lanes`: the ``(w, L)`` row indices."""
        widths = np.full(iters, int(width), dtype=np.int64)
        deltas = unpack_slice(stream_view, widths, lanes, self.sym_len)
        return _delta().delta_decode_lanes(deltas)

    # -- stream assembly ------------------------------------------------
    def concat(self, blocks: Sequence[np.ndarray]) -> MultiplexedStream:
        """Concatenate per-slice symbol blocks into one device stream."""
        return concat_slices(blocks, sym_len=self.sym_len)

    def encode_column_slices(
        self, blocks: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[MultiplexedStream, List[np.ndarray]]:
        """Encode ``(col_block, valid)`` pairs into one stream + widths."""
        symbols: List[np.ndarray] = []
        widths: List[np.ndarray] = []
        for col_block, valid in blocks:
            syms, w = self.encode_columns(col_block, valid)
            symbols.append(syms)
            widths.append(w)
        return self.concat(symbols), widths

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def valid_mask(lengths: np.ndarray, width: int) -> np.ndarray:
        """Left-packed validity mask of a ``(h, width)`` ELL block."""
        return np.arange(int(width))[np.newaxis, :] < np.asarray(
            lengths, dtype=np.int64
        )[:, np.newaxis]
