"""Bit-stream packing primitives for the BRO compression schemes.

The layout implemented here is the one Fig. 1 / Fig. 2 of the paper describe:

* each *row stream* packs one row of (delta-encoded) indices MSB-first, with
  a per-column bit width shared by all rows of a slice;
* every row stream is padded (``b_p`` bits) to a whole number of
  ``sym_len``-bit symbols;
* the row streams of a slice are *multiplexed* — symbol ``s`` of row ``r``
  lives at flat offset ``s * h + r`` — so that the ``h`` simulated threads of
  a slice read consecutive words (coalesced access).

:mod:`~repro.bitstream.packing` holds the vectorized pack/unpack kernels,
:mod:`~repro.bitstream.writer` / :mod:`~repro.bitstream.reader` hold scalar
reference implementations used by the test-suite as ground truth,
:mod:`~repro.bitstream.multiplex` holds the slice-concatenation layout, and
:mod:`~repro.bitstream.codec` composes all of it into the reusable
:class:`~repro.bitstream.codec.BROCodec` layer the format containers use.
"""

from .multiplex import MultiplexedStream, concat_slices
from .packing import pack_slice, row_stream_symbols, unpack_slice
from .reader import BitReader, SliceDecoder
from .writer import BitWriter
from .codec import BROCodec

__all__ = [
    "BROCodec",
    "pack_slice",
    "unpack_slice",
    "row_stream_symbols",
    "BitWriter",
    "BitReader",
    "SliceDecoder",
    "MultiplexedStream",
    "concat_slices",
]
