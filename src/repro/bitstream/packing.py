"""Vectorized bit packing/unpacking of slice data (host-side, offline).

A *slice* is an ``(h, L)`` array of non-negative integers (delta-encoded
indices) together with an ``(L,)`` array of per-column bit widths
``bit_alloc`` such that ``values[:, j] < 2**bit_alloc[j]``. Packing produces,
for each of the ``h`` rows, an MSB-first bit stream of
``sum(bit_alloc) + b_p`` bits where ``b_p`` pads to a multiple of
``sym_len``; the streams are returned multiplexed in symbol-major order
(symbol ``s`` of row ``r`` at flat index ``s * h + r``), which is what gives
the simulated GPU threads coalesced loads.

Everything here is pure NumPy, vectorized over rows and columns — per the
HPC guide, no Python-level loops over matrix entries (the only loop is over
the at-most-two symbols a value can straddle, which is O(1)).
"""

from __future__ import annotations

import numpy as np

from ..errors import CompressionError, ValidationError
from ..telemetry import metrics as _metrics
from ..types import symbol_dtype
from ..utils.bits import bit_width_array, ceil_div
from ..utils.validation import check_1d, check_2d

__all__ = ["pack_slice", "unpack_slice", "row_stream_symbols", "column_bit_offsets"]


def column_bit_offsets(bit_alloc: np.ndarray) -> np.ndarray:
    """Return the starting bit offset of each column in a row stream.

    ``offsets[j] = sum(bit_alloc[:j])`` — identical for every row of the
    slice because all rows share the per-column widths.
    """
    bit_alloc = check_1d(bit_alloc, "bit_alloc")
    offsets = np.zeros(bit_alloc.shape[0], dtype=np.int64)
    np.cumsum(bit_alloc[:-1], out=offsets[1:])
    return offsets


def row_stream_symbols(bit_alloc: np.ndarray, sym_len: int) -> int:
    """Number of ``sym_len``-bit symbols per row stream (after ``b_p`` padding)."""
    bit_alloc = check_1d(bit_alloc, "bit_alloc")
    total_bits = int(bit_alloc.sum())
    return ceil_div(total_bits, sym_len) if total_bits else 0


def _validate_pack_args(values: np.ndarray, bit_alloc: np.ndarray, sym_len: int) -> None:
    if bit_alloc.shape[0] != values.shape[1]:
        raise ValidationError(
            f"bit_alloc has {bit_alloc.shape[0]} entries but values has "
            f"{values.shape[1]} columns"
        )
    if bit_alloc.size:
        if int(bit_alloc.min()) < 1:
            raise CompressionError("every column bit width must be >= 1")
        if int(bit_alloc.max()) > sym_len:
            raise CompressionError(
                f"column bit width {int(bit_alloc.max())} exceeds the symbol "
                f"length {sym_len}; a value may straddle at most two symbols"
            )
    if values.size:
        if not np.issubdtype(values.dtype, np.unsignedinteger) and values.min() < 0:
            raise CompressionError("packed values must be non-negative")
        # Compare widths, not magnitudes: 1 << 63 overflows int64 but
        # bit_width_array is exact for the full uint64 range.
        widths = bit_width_array(values)
        too_wide = widths > bit_alloc[np.newaxis, :]
        # Gamma(0) == 1 but a zero fits in any width >= 1, so exempt zeros.
        too_wide &= values.astype(np.uint64, copy=False) != 0
        if np.any(too_wide):
            bad = int(np.argmax(too_wide.any(axis=0)))
            raise CompressionError(
                f"column {bad} holds a value that does not fit in "
                f"{int(bit_alloc[bad])} bits"
            )


#: Below this many elements in ``parts`` the per-run ``reduceat`` is the
#: fastest option; above it, its scalar inner loop loses to the vectorized
#: fold below (empirical crossover on the CI reference machine).
_REDUCEAT_CUTOFF = 1 << 16


def _grouped_or(acc: np.ndarray, sym_idx: np.ndarray, parts: np.ndarray) -> None:
    """OR the rows of ``parts`` into ``acc[sym_idx]``, grouped per symbol.

    ``sym_idx`` is non-decreasing (column offsets are cumulative), so the
    contributors of each target symbol form one contiguous run. That
    replaces the element-at-a-time ``bitwise_or.at`` scatter — which costs a
    Python-level inner loop in NumPy and dominated encode time for wide
    slices — with one of two grouped reductions:

    - small slices: one ``bitwise_or.reduceat`` over the run starts;
    - large slices: a fold over the position-within-run axis. Runs are
      sorted by length so the still-alive runs always form a prefix, and
      each of the at-most-``sym_len`` iterations is a single vectorized
      gather-and-OR over that prefix.
    """
    uniq, starts, counts = np.unique(
        sym_idx, return_index=True, return_counts=True
    )
    if parts.size <= _REDUCEAT_CUTOFF:
        acc[uniq] |= np.bitwise_or.reduceat(parts, starts, axis=0)
        return
    order = np.argsort(-counts, kind="stable")
    starts_s, counts_s = starts[order], counts[order]
    out = parts[starts_s].copy()
    k = 1
    n = int(np.searchsorted(-counts_s, -k, side="left"))
    while n:
        out[:n] |= parts[starts_s[:n] + k]
        k += 1
        n = int(np.searchsorted(-counts_s, -k, side="left"))
    acc[uniq[order]] |= out


def pack_slice(values: np.ndarray, bit_alloc: np.ndarray, sym_len: int = 32) -> np.ndarray:
    """Pack an ``(h, L)`` slice into a multiplexed symbol stream.

    Parameters
    ----------
    values:
        ``(h, L)`` array of non-negative integers; ``values[r, j]`` must fit
        in ``bit_alloc[j]`` bits.
    bit_alloc:
        ``(L,)`` per-column bit widths (the paper's ``bit_alloc_i`` without
        the trailing padding entry ``b_p``, which is implied).
    sym_len:
        Symbol length in bits (32 or 64).

    Returns
    -------
    numpy.ndarray
        Flat unsigned array of ``n_sym * h`` words where ``n_sym`` is
        :func:`row_stream_symbols`; symbol ``s`` of row ``r`` is at index
        ``s * h + r``.
    """
    values = check_2d(values, "values")
    bit_alloc = np.asarray(check_1d(bit_alloc, "bit_alloc"), dtype=np.int64)
    dtype = symbol_dtype(sym_len)
    h, L = values.shape
    n_sym = row_stream_symbols(bit_alloc, sym_len)
    _validate_pack_args(values, bit_alloc, sym_len)
    if _metrics.collecting():
        _metrics.record_bitstream_encode(n_sym * h, int(bit_alloc.sum()) * h)
    if n_sym == 0 or h == 0:
        return np.zeros(0, dtype=dtype)

    vals = values.astype(np.uint64, copy=False)
    offsets = column_bit_offsets(bit_alloc)  # (L,)
    widths = bit_alloc  # (L,)

    sym_idx = offsets // sym_len  # first symbol touched by each column
    bit_in_sym = offsets % sym_len  # offset of the value's MSB inside it
    n_first = np.minimum(widths, sym_len - bit_in_sym)  # bits landing in sym_idx
    n_second = widths - n_first  # spill into sym_idx + 1

    acc = np.zeros((n_sym, h), dtype=np.uint64)

    # Part landing in the first symbol: the value's top `n_first` bits,
    # left-aligned below `bit_in_sym` already-used bits.
    shift_down = (widths - n_first).astype(np.uint64)[:, None]  # (L, 1)
    shift_up = (sym_len - bit_in_sym - n_first).astype(np.uint64)[:, None]
    first_part = ((vals.T >> shift_down) << shift_up).astype(np.uint64)  # (L, h)
    _grouped_or(acc, sym_idx, first_part)

    # Spill part: the value's low `n_second` bits at the top of the next
    # symbol. Only columns that actually straddle contribute.
    straddle = n_second > 0
    if np.any(straddle):
        lo_mask = ((np.uint64(1) << n_second[straddle].astype(np.uint64)) - np.uint64(1))[:, None]
        up2 = (sym_len - n_second[straddle]).astype(np.uint64)[:, None]
        second_part = ((vals.T[straddle] & lo_mask) << up2).astype(np.uint64)
        _grouped_or(acc, sym_idx[straddle] + 1, second_part)

    return acc.reshape(-1).astype(dtype)


def unpack_slice(
    stream: np.ndarray,
    bit_alloc: np.ndarray,
    h: int,
    sym_len: int = 32,
) -> np.ndarray:
    """Inverse of :func:`pack_slice`; returns an ``(h, L)`` ``int64`` array.

    This is the *random-access* host-side unpacker used for verification and
    round-trip tests; the simulated GPU decode path lives in
    :class:`repro.bitstream.reader.SliceDecoder`, which walks the stream the
    way Algorithm 1 does.
    """
    stream = check_1d(stream, "stream")
    bit_alloc = np.asarray(check_1d(bit_alloc, "bit_alloc"), dtype=np.int64)
    if bit_alloc.size and (
        int(bit_alloc.min()) < 1 or int(bit_alloc.max()) > sym_len
    ):
        # Same width-range contract the stepwise SliceDecoder enforces per
        # decode, so a corrupted bit_alloc fails the vectorized path with
        # the same typed error instead of producing garbage.
        raise ValidationError(
            f"column bit widths must be in [1, {sym_len}], got range "
            f"[{int(bit_alloc.min())}, {int(bit_alloc.max())}]"
        )
    n_sym = row_stream_symbols(bit_alloc, sym_len)
    L = bit_alloc.shape[0]
    if h <= 0:
        raise ValidationError(f"slice height h must be positive, got {h}")
    if stream.shape[0] != n_sym * h:
        raise ValidationError(
            f"stream has {stream.shape[0]} symbols, expected n_sym*h = {n_sym * h}"
        )
    if _metrics.collecting():
        _metrics.record_bitstream_decode(stream.shape[0])
    if L == 0:
        return np.zeros((h, 0), dtype=np.int64)

    sym = stream.astype(np.uint64, copy=False).reshape(n_sym, h)
    offsets = column_bit_offsets(bit_alloc)
    widths = bit_alloc
    sym_idx = offsets // sym_len
    bit_in_sym = offsets % sym_len
    n_first = np.minimum(widths, sym_len - bit_in_sym)
    n_second = widths - n_first

    first_words = sym[sym_idx]  # (L, h)
    down1 = (sym_len - bit_in_sym - n_first).astype(np.uint64)[:, None]
    # 2**n - 1 computed as ((1 << (n-1)) - 1) * 2 + 1 so that n == 64 (a
    # value filling a whole 64-bit symbol) does not overflow the shift.
    nf = n_first.astype(np.uint64)
    mask1 = ((((np.uint64(1) << (nf - np.uint64(1))) - np.uint64(1)) << np.uint64(1))
             | np.uint64(1))[:, None]
    out = ((first_words >> down1) & mask1).astype(np.uint64)

    straddle = n_second > 0
    if np.any(straddle):
        second_words = sym[sym_idx[straddle] + 1]  # (S, h)
        n2 = n_second[straddle].astype(np.uint64)[:, None]
        down2 = (np.uint64(sym_len) - n2).astype(np.uint64)
        mask2 = (np.uint64(1) << n2) - np.uint64(1)
        out[straddle] = (out[straddle] << n2) | ((second_words >> down2) & mask2)

    return out.T.astype(np.int64)
