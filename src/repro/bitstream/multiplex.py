"""Concatenated multi-slice stream layout.

A BRO matrix holds one packed stream per slice; on the (simulated) device
they live back-to-back in a single buffer, addressed through a CSR-style
pointer array. :class:`MultiplexedStream` is that buffer plus its pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import ValidationError
from ..types import symbol_dtype

__all__ = ["MultiplexedStream", "concat_slices"]


@dataclass(frozen=True)
class MultiplexedStream:
    """A single device buffer holding every slice's multiplexed symbols.

    Attributes
    ----------
    data:
        1-D unsigned array; slice ``i`` occupies
        ``data[slice_ptr[i]:slice_ptr[i + 1]]``.
    slice_ptr:
        ``(num_slices + 1,)`` int64 offsets into :attr:`data` (in symbols).
    sym_len:
        Symbol length in bits.
    """

    data: np.ndarray
    slice_ptr: np.ndarray
    sym_len: int

    def __post_init__(self) -> None:
        dtype = symbol_dtype(self.sym_len)
        if self.data.dtype != dtype:
            raise ValidationError(
                f"stream dtype {self.data.dtype} does not match sym_len {self.sym_len}"
            )
        if self.slice_ptr.ndim != 1 or self.slice_ptr.shape[0] < 1:
            raise ValidationError("slice_ptr must be a non-empty 1-D array")
        if int(self.slice_ptr[0]) != 0 or int(self.slice_ptr[-1]) != self.data.shape[0]:
            raise ValidationError("slice_ptr must start at 0 and end at len(data)")
        if np.any(np.diff(self.slice_ptr) < 0):
            raise ValidationError("slice_ptr must be non-decreasing")

    @property
    def num_slices(self) -> int:
        """Number of slices stored in the buffer."""
        return self.slice_ptr.shape[0] - 1

    @property
    def nbytes(self) -> int:
        """Device bytes occupied by the packed data."""
        return int(self.data.nbytes)

    def slice_view(self, i: int) -> np.ndarray:
        """Zero-copy view of slice ``i``'s symbols."""
        if not 0 <= i < self.num_slices:
            raise ValidationError(f"slice index {i} out of range [0, {self.num_slices})")
        return self.data[int(self.slice_ptr[i]) : int(self.slice_ptr[i + 1])]

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self.num_slices):
            yield self.slice_view(i)


def concat_slices(slices: Sequence[np.ndarray], sym_len: int = 32) -> MultiplexedStream:
    """Concatenate per-slice symbol arrays into one :class:`MultiplexedStream`."""
    dtype = symbol_dtype(sym_len)
    lengths = np.array([0] + [int(np.asarray(s).shape[0]) for s in slices], dtype=np.int64)
    slice_ptr = np.cumsum(lengths)
    if slices:
        data = np.concatenate([np.asarray(s, dtype=dtype) for s in slices])
    else:
        data = np.zeros(0, dtype=dtype)
    return MultiplexedStream(data=data, slice_ptr=slice_ptr, sym_len=int(sym_len))
