"""Scalar MSB-first bit writer — the reference implementation.

:class:`BitWriter` packs one row stream at a time using plain Python integer
arithmetic. It is deliberately simple and slow; the vectorized
:func:`repro.bitstream.packing.pack_slice` is validated against it in the
test-suite (including Hypothesis round-trip properties).
"""

from __future__ import annotations

import numpy as np

from ..errors import CompressionError, ValidationError
from ..types import symbol_dtype
from ..utils.bits import mask

__all__ = ["BitWriter"]


class BitWriter:
    """Accumulate values MSB-first and emit ``sym_len``-bit symbols.

    Example
    -------
    >>> w = BitWriter(sym_len=32)
    >>> w.write(5, 3)
    >>> w.write(1, 1)
    >>> symbols = w.finish()
    >>> int(symbols[0]) >> 28   # 0b1011 in the top nibble
    11
    """

    def __init__(self, sym_len: int = 32) -> None:
        self._dtype = symbol_dtype(sym_len)
        self.sym_len = int(sym_len)
        self._acc = 0  # pending bits, MSB-first, as a Python int
        self._nbits = 0  # number of pending bits
        self._symbols: list[int] = []
        self._finished = False

    @property
    def bits_written(self) -> int:
        """Total number of data bits written so far (excluding padding)."""
        return len(self._symbols) * self.sym_len + self._nbits

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value`` to the stream."""
        if self._finished:
            raise CompressionError("BitWriter already finished")
        value = int(value)
        nbits = int(nbits)
        if nbits < 1 or nbits > self.sym_len:
            raise ValidationError(f"nbits must be in [1, {self.sym_len}], got {nbits}")
        if value < 0 or value > mask(nbits):
            raise CompressionError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= self.sym_len:
            self._nbits -= self.sym_len
            self._symbols.append((self._acc >> self._nbits) & mask(self.sym_len))
            self._acc &= mask(self._nbits)

    def finish(self) -> np.ndarray:
        """Pad with zero bits (the paper's ``b_p``) and return the symbols."""
        if not self._finished:
            if self._nbits:
                pad = self.sym_len - self._nbits
                self._symbols.append((self._acc << pad) & mask(self.sym_len))
                self._acc = 0
                self._nbits = 0
            self._finished = True
        return np.array(self._symbols, dtype=self._dtype)
