"""Stream decoders: a scalar reference reader and the slice-wide decoder.

:class:`BitReader` is the scalar mirror of :class:`~repro.bitstream.writer.BitWriter`.

:class:`SliceDecoder` is the *simulated-GPU* decode engine of Algorithm 1:
it holds one ``sym_len``-bit buffer per thread (a NumPy vector of ``h``
words) plus the scalar control state — remaining-bit count ``rb`` and the
next symbol index — which is shared by every thread of a slice because all
rows of a slice consume the identical per-column bit widths. That shared
control state is exactly why the paper's scheme is free of warp divergence,
and it is what lets this simulator vectorize the decode across threads
without changing its semantics.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecompressionError, ValidationError
from ..types import symbol_dtype
from ..utils.bits import mask

__all__ = ["BitReader", "SliceDecoder"]


class BitReader:
    """Scalar MSB-first reader over a symbol array produced by ``BitWriter``."""

    def __init__(self, symbols: np.ndarray, sym_len: int = 32) -> None:
        self._dtype = symbol_dtype(sym_len)
        self.sym_len = int(sym_len)
        self._symbols = np.asarray(symbols, dtype=self._dtype)
        self._pos = 0  # next symbol index
        self._acc = 0
        self._nbits = 0

    @property
    def bits_remaining(self) -> int:
        """Bits still available, counting both buffered and unread symbols."""
        return self._nbits + (self._symbols.shape[0] - self._pos) * self.sym_len

    def read(self, nbits: int) -> int:
        """Read ``nbits`` MSB-first bits and return them as an unsigned int."""
        nbits = int(nbits)
        if nbits < 1 or nbits > self.sym_len:
            raise ValidationError(f"nbits must be in [1, {self.sym_len}], got {nbits}")
        if nbits > self.bits_remaining:
            raise DecompressionError(
                f"requested {nbits} bits but only {self.bits_remaining} remain"
            )
        while self._nbits < nbits:
            self._acc = (self._acc << self.sym_len) | int(self._symbols[self._pos])
            self._pos += 1
            self._nbits += self.sym_len
        self._nbits -= nbits
        out = (self._acc >> self._nbits) & mask(nbits)
        self._acc &= mask(self._nbits)
        return out


class SliceDecoder:
    """Algorithm-1 decode engine for one slice, vectorized over its rows.

    Parameters
    ----------
    stream:
        Multiplexed symbol stream of the slice (``n_sym * h`` words laid out
        symbol-major, see :func:`repro.bitstream.packing.pack_slice`).
    h:
        Slice height — the number of simulated threads (rows).
    sym_len:
        Symbol length in bits.

    Notes
    -----
    Algorithm 1 line 12 indexes the stream with the column counter; we keep
    an explicit symbol counter instead so the stream stays dense (see
    DESIGN.md). We also take the buffer branch when ``b == rb`` (the paper
    tests ``b < rb``) which avoids loading one symbol past the end of the
    stream when a row stream is an exact multiple of ``sym_len``; the decode
    output and the divergence-freedom argument are unchanged.

    The decoder counts its symbol loads in :attr:`symbol_loads` so the GPU
    timing model can charge the right number of memory transactions.
    """

    def __init__(self, stream: np.ndarray, h: int, sym_len: int = 32) -> None:
        dtype = symbol_dtype(sym_len)
        stream = np.asarray(stream, dtype=dtype)
        if h <= 0:
            raise ValidationError(f"slice height h must be positive, got {h}")
        if stream.ndim != 1 or stream.shape[0] % h != 0:
            raise ValidationError(
                f"stream length {stream.shape} is not a multiple of h={h}"
            )
        self.sym_len = int(sym_len)
        self.h = int(h)
        self._stream = stream.reshape(-1, h)  # (n_sym, h): one load = one row
        self._n_sym = self._stream.shape[0]
        self._next_sym = 0  # scalar: shared by all threads of the slice
        self._rb = 0  # scalar: remaining bits in every thread's buffer
        self._buf = np.zeros(h, dtype=np.uint64)  # per-thread symbol buffer
        self.symbol_loads = 0  # number of coalesced (h-wide) loads issued

    @property
    def remaining_symbols(self) -> int:
        """Symbols not yet loaded into the per-thread buffers."""
        return self._n_sym - self._next_sym

    def _load(self) -> np.ndarray:
        if self._next_sym >= self._n_sym:
            raise DecompressionError("compressed stream exhausted")
        word = self._stream[self._next_sym].astype(np.uint64)
        self._next_sym += 1
        self.symbol_loads += 1
        return word

    def decode(self, b: int) -> np.ndarray:
        """Decode the next ``b``-bit value for every thread of the slice.

        Returns a ``(h,)`` ``int64`` vector. All threads execute the same
        branch — either both read from the buffer or both load the next
        symbol — mirroring lines 6–16 of Algorithm 1.
        """
        b = int(b)
        if b < 1 or b > self.sym_len:
            raise ValidationError(f"bit width must be in [1, {self.sym_len}], got {b}")
        top = np.uint64(self.sym_len)
        if b <= self._rb:
            # Branch 1: enough bits buffered — extract the top b bits.
            decoded = self._buf >> (top - np.uint64(b))
            self._rb -= b
        else:
            # Branch 2: drain the buffer, load the next symbol, finish the
            # value from its top bits.
            take = self._rb
            decoded = (
                self._buf >> (top - np.uint64(take)) if take else np.zeros(self.h, np.uint64)
            )
            need = b - take
            word = self._load()
            decoded = (decoded << np.uint64(need)) | (word >> (top - np.uint64(need)))
            self._buf = word
            self._rb = self.sym_len - need
            # Align the freshly loaded word so its unread bits sit at the top.
            b = need
        # Shift consumed bits out of the buffer (Algorithm 1 line 16).
        if b < self.sym_len:
            self._buf = (self._buf << np.uint64(b)) & (
                (~np.uint64(0)) if self.sym_len == 64 else np.uint64(mask(self.sym_len))
            )
        else:
            self._buf = np.zeros(self.h, dtype=np.uint64)
        return decoded.astype(np.int64)
