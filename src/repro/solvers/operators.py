"""Linear operators over stored sparse formats.

:class:`FormatOperator` applies the matrix with the format's reference
``spmv``. :class:`SimulatedOperator` routes every application through the
simulated GPU kernel and accumulates the *predicted device time*, letting
solver examples report how much faster an iterative solve would run with a
BRO format — the paper's motivating use-case.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..kernels.base import get_kernel

__all__ = ["FormatOperator", "SimulatedOperator"]


class FormatOperator:
    """Callable ``y = A @ x`` over a stored format (host reference path)."""

    def __init__(self, matrix: SparseFormat) -> None:
        self.matrix = matrix
        self.shape = matrix.shape
        self.spmv_calls = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.spmv_calls += 1
        return self.matrix.spmv(x)


class SimulatedOperator(FormatOperator):
    """Operator that executes on the simulated GPU and tracks device time."""

    def __init__(self, matrix: SparseFormat, device: DeviceSpec | str = "k20"):
        super().__init__(matrix)
        self.device = get_device(device) if isinstance(device, str) else device
        self._kernel = get_kernel(matrix.format_name)
        self.device_time = 0.0  #: accumulated predicted seconds in SpMV
        self.dram_bytes = 0  #: accumulated predicted DRAM traffic

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.spmv_calls += 1
        result = self._kernel.run(self.matrix, x, self.device)
        self.device_time += result.timing.time
        self.dram_bytes += result.counters.dram_bytes
        return result.y
