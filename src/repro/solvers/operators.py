"""Linear operators over stored sparse formats.

:class:`FormatOperator` applies the matrix with the format's reference
``spmv``. :class:`SimulatedOperator` routes every application through the
simulated GPU kernel and accumulates the *predicted device time*, letting
solver examples report how much faster an iterative solve would run with a
BRO format — the paper's motivating use-case.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..kernels.dispatch import run_spmv
from ..kernels.plan import has_planner
from ..kernels.plancache import PLAN_CACHE, PlanCache

__all__ = ["FormatOperator", "SimulatedOperator"]


class FormatOperator:
    """Callable ``y = A @ x`` over a stored format (host reference path)."""

    def __init__(self, matrix: SparseFormat) -> None:
        self.matrix = matrix
        self.shape = matrix.shape
        self.spmv_calls = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.spmv_calls += 1
        return self.matrix.spmv(x)


class SimulatedOperator(FormatOperator):
    """Operator that executes on the simulated GPU and tracks device time.

    Every application goes through :func:`~repro.kernels.dispatch.run_spmv`
    — the integrity boundary — so operator-driven solves honor the same
    ``verify``/``fallback`` protections as direct dispatch, and the
    dispatch span shows up in traces. Plannable formats use the prepared
    execution engine by default: the first call builds (or fetches) the
    plan from ``plan_cache`` and subsequent iterations replay it, which is
    what makes a many-iteration CG/BiCGSTAB solve fast in host wall-clock.
    Pass ``engine="reference"`` to force the stepwise kernels.
    """

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec | str = "k20",
        *,
        verify: Union[bool, str, None] = False,
        fallback: Optional[SparseFormat] = None,
        engine: str = "auto",
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        super().__init__(matrix)
        self.device = get_device(device) if isinstance(device, str) else device
        self.verify = verify
        self.fallback = fallback
        if engine == "auto":
            engine = "fast" if has_planner(matrix.format_name) else "reference"
        self.engine = engine
        self.plan_cache = (
            plan_cache
            if plan_cache is not None or engine == "reference"
            else PLAN_CACHE
        )
        self.device_time = 0.0  #: accumulated predicted seconds in SpMV
        self.dram_bytes = 0  #: accumulated predicted DRAM traffic
        self.fallbacks_used = 0  #: applications served by the fallback matrix

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.spmv_calls += 1
        result = run_spmv(
            self.matrix,
            x,
            self.device,
            verify=self.verify,
            fallback=self.fallback,
            engine=self.engine,
            plan_cache=self.plan_cache,
        )
        if result.fallback_used:
            self.fallbacks_used += 1
        self.device_time += result.timing.time
        self.dram_bytes += result.counters.dram_bytes
        return result.y
