"""Linear operators over stored sparse formats.

:class:`FormatOperator` applies the matrix with the format's reference
``spmv``. :class:`SimulatedOperator` routes every application through a
:class:`~repro.pipeline.Session` — and therefore through the simulated GPU
kernel and the dispatch integrity boundary — accumulating the *predicted
device time*, letting solver examples report how much faster an iterative
solve would run with a BRO format — the paper's motivating use-case.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exec.policy import ExecutionPolicy
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec
from ..pipeline import Session
from ..registry import has_planner
from ..kernels.plancache import PlanCache

__all__ = ["FormatOperator", "SimulatedOperator"]


class FormatOperator:
    """Callable ``y = A @ x`` over a stored format (host reference path)."""

    def __init__(self, matrix: SparseFormat) -> None:
        self.matrix = matrix
        self.shape = matrix.shape
        self.spmv_calls = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.spmv_calls += 1
        return self.matrix.spmv(x)


class SimulatedOperator(FormatOperator):
    """Operator that executes on the simulated GPU and tracks device time.

    A thin callable facade over a single-matrix
    :class:`~repro.pipeline.Session`: every application goes through
    :func:`~repro.kernels.dispatch.run_spmv` — the integrity boundary — so
    operator-driven solves honor the same ``verify``/``fallback``
    protections as direct dispatch, and the dispatch span shows up in
    traces. Plannable formats use the prepared execution engine by
    default: the first call builds (or fetches) the plan from
    ``plan_cache`` and subsequent iterations replay it, which is what
    makes a many-iteration CG/BiCGSTAB solve fast in host wall-clock.
    Pass ``policy=ExecutionPolicy(engine="reference")`` to force the
    stepwise kernels, or ``devices=N`` in the policy to shard the solve
    across simulated devices (``backend="process"`` for the
    fault-tolerant worker pool).
    """

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec | str = "k20",
        *,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        super().__init__(matrix)
        pol = policy if policy is not None else ExecutionPolicy()
        if pol.engine == "auto":
            pol = pol.with_(
                engine="fast" if has_planner(matrix.format_name) else "reference"
            )
        self.session = Session(device, policy=pol).use(matrix)

    @property
    def device(self) -> DeviceSpec:
        return self.session.device

    @property
    def verify(self) -> Union[bool, str, None]:
        return self.session.verify

    @property
    def fallback(self) -> Optional[SparseFormat]:
        return self.session.fallback

    @property
    def engine(self) -> str:
        return self.session.engine

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        return self.session.plan_cache

    @property
    def device_time(self) -> float:
        """Accumulated predicted seconds in SpMV."""
        return self.session.device_time

    @property
    def dram_bytes(self) -> int:
        """Accumulated predicted DRAM traffic."""
        return self.session.dram_bytes

    @property
    def fallbacks_used(self) -> int:
        """Applications served by the fallback matrix."""
        return self.session.fallbacks_used

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.spmv_calls += 1
        return self.session.run(x).y
