"""BiCGSTAB for unsymmetric systems (van der Vorst; Saad [21, Alg. 7.7]).

Complements CG (SPD only) and GMRES (memory grows with the restart
length): BiCGSTAB needs two SpMV per iteration and constant memory —
which doubles the SpMV pressure per iteration and makes it an even
better showcase for compressed formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import ConvergenceError, ValidationError
from ..types import VALUE_DTYPE

__all__ = ["BiCGSTABResult", "bicgstab"]


@dataclass
class BiCGSTABResult:
    """Outcome of a BiCGSTAB solve."""

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    residual_history: List[float]


def bicgstab(
    operator: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    raise_on_fail: bool = False,
) -> BiCGSTABResult:
    """Solve ``A x = b`` with the stabilized bi-conjugate gradient method."""
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 1:
        raise ValidationError("b must be a vector")
    n = b.shape[0]
    x = np.zeros(n, dtype=VALUE_DTYPE) if x0 is None else np.array(x0, dtype=VALUE_DTYPE)
    if x.shape != (n,):
        raise ValidationError("x0 must match b's length")
    if max_iter <= 0:
        raise ValidationError("max_iter must be positive")

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return BiCGSTABResult(np.zeros(n), 0, 0.0, True, [0.0])

    r = b - operator(x)
    r_hat = r.copy()  # shadow residual
    rho = alpha = omega = 1.0
    v = np.zeros(n, dtype=VALUE_DTYPE)
    p = np.zeros(n, dtype=VALUE_DTYPE)
    history = [float(np.linalg.norm(r)) / b_norm]

    for it in range(1, max_iter + 1):
        rho_new = float(r_hat @ r)
        if abs(rho_new) < 1e-300:
            raise ConvergenceError(
                "BiCGSTAB breakdown (rho ~ 0)", it, history[-1]
            )
        beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
        p = r + beta * (p - omega * v) if it > 1 else r.copy()
        v = operator(p)
        denom = float(r_hat @ v)
        if abs(denom) < 1e-300:
            raise ConvergenceError(
                "BiCGSTAB breakdown (r_hat . v ~ 0)", it, history[-1]
            )
        alpha = rho_new / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s)) / b_norm
        if s_norm < tol:  # early half-step convergence
            x += alpha * p
            history.append(s_norm)
            return BiCGSTABResult(x, it, s_norm, True, history)
        t = operator(s)
        tt = float(t @ t)
        if tt == 0.0:
            raise ConvergenceError(
                "BiCGSTAB breakdown (t = 0)", it, history[-1]
            )
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        res = float(np.linalg.norm(r)) / b_norm
        history.append(res)
        if res < tol:
            return BiCGSTABResult(x, it, res, True, history)
        if abs(omega) < 1e-300:
            raise ConvergenceError(
                "BiCGSTAB breakdown (omega ~ 0)", it, res
            )

    if raise_on_fail:
        raise ConvergenceError(
            f"BiCGSTAB did not converge in {max_iter} iterations",
            max_iter,
            history[-1],
        )
    return BiCGSTABResult(x, max_iter, history[-1], False, history)
