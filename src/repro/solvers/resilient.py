"""Retry wrapper for the iterative solvers (fault-tolerant solves).

Iterative solves on top of a compressed operator can fail two ways: the
method stagnates (:class:`~repro.errors.ConvergenceError`, breakdown) or
the operator itself trips an integrity fault mid-solve. A production
service should not give up on the first failure: :func:`solve_with_retry`
re-runs the solver with a deterministically perturbed initial guess —
restarted Krylov methods frequently escape stagnation from a nearby
starting point — and, once the retry budget is exhausted, falls back to a
trusted reference operator when one is provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import ConvergenceError, ReproError, ValidationError
from ..types import VALUE_DTYPE

__all__ = ["ResilientSolveResult", "solve_with_retry"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class ResilientSolveResult:
    """Outcome of a retried solve."""

    x: np.ndarray
    iterations: int  #: inner iterations of the successful attempt
    residual: float
    converged: bool
    attempts: int  #: solver invocations performed (1 = first try succeeded)
    used_fallback_operator: bool
    errors: List[str]  #: stringified failure of every unsuccessful attempt


def solve_with_retry(
    solver: Callable[..., object],
    operator: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_retries: int = 2,
    perturbation: float = 1e-3,
    fallback_operator: Optional[Operator] = None,
    seed: int = 0,
    **solver_kwargs: object,
) -> ResilientSolveResult:
    """Run ``solver(operator, b, ...)`` with perturbed restarts and fallback.

    Parameters
    ----------
    solver:
        :func:`~repro.solvers.gmres.gmres`,
        :func:`~repro.solvers.bicgstab.bicgstab` or any callable with the
        same ``(operator, b, x0=..., raise_on_fail=...)`` shape returning a
        result with ``x``/``iterations``/``residual``/``converged`` fields.
    operator:
        The (possibly compressed/simulated) ``y = A @ x`` callable.
    b:
        Right-hand side.
    x0:
        Initial guess for the first attempt (default zero).
    max_retries:
        Perturbed re-runs after the first failure, before the fallback.
    perturbation:
        Relative scale of the random perturbation added to the initial
        guess on each retry (scaled by ``||b||``; deterministic in ``seed``).
    fallback_operator:
        Trusted reference operator (e.g. a
        :class:`~repro.solvers.operators.FormatOperator` over the pristine
        CSR matrix) used for one final attempt when every retry on the
        primary operator failed. Without it the last error re-raises.
    solver_kwargs:
        Passed through to ``solver`` (``tol``, ``restart``, ``max_iter``...).

    Notes
    -----
    Solver breakdowns surfacing as :class:`numpy.linalg.LinAlgError` (a
    singular least-squares system after a Krylov breakdown) are treated
    like :class:`~repro.errors.ConvergenceError` and retried.
    """
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if max_retries < 0:
        raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
    rng = np.random.default_rng(seed)
    b_scale = float(np.linalg.norm(b)) or 1.0
    guess = None if x0 is None else np.asarray(x0, dtype=VALUE_DTYPE)

    errors: List[str] = []
    attempts = 0
    for retry in range(max_retries + 1):
        attempts += 1
        try:
            result = solver(operator, b, x0=guess, raise_on_fail=True, **solver_kwargs)
            return ResilientSolveResult(
                x=result.x,
                iterations=result.iterations,
                residual=result.residual,
                converged=True,
                attempts=attempts,
                used_fallback_operator=False,
                errors=errors,
            )
        except (ConvergenceError, ReproError, np.linalg.LinAlgError) as exc:
            errors.append(f"{type(exc).__name__}: {exc}")
            last_error = exc
        # Restart from a perturbed guess: the previous guess (or zero) plus
        # a small deterministic random displacement scaled to the problem.
        base = np.zeros_like(b) if guess is None else guess
        guess = base + perturbation * b_scale * rng.standard_normal(b.shape[0])

    if fallback_operator is not None:
        result = solver(
            fallback_operator, b, x0=x0, raise_on_fail=True, **solver_kwargs
        )
        return ResilientSolveResult(
            x=result.x,
            iterations=result.iterations,
            residual=result.residual,
            converged=True,
            attempts=attempts + 1,
            used_fallback_operator=True,
            errors=errors,
        )
    raise last_error
