"""Iterative solvers driving the SpMV kernels (paper Section 1 motivation).

SpMV is "the main bottleneck of these iterative algorithms"; this package
provides the Conjugate Gradient and restarted GMRES methods of Saad [21]
on top of any stored format — optionally through the simulated GPU
kernels, accumulating the predicted device time spent in SpMV so the
examples can report end-to-end solver-level speedups of the BRO formats.
"""

from .bicgstab import BiCGSTABResult, bicgstab
from .cg import CGResult, conjugate_gradient
from .gmres import GMRESResult, gmres
from .operators import FormatOperator, SimulatedOperator
from .resilient import ResilientSolveResult, solve_with_retry

__all__ = [
    "bicgstab",
    "BiCGSTABResult",
    "conjugate_gradient",
    "CGResult",
    "gmres",
    "GMRESResult",
    "FormatOperator",
    "SimulatedOperator",
    "solve_with_retry",
    "ResilientSolveResult",
]
