"""Conjugate Gradient method for symmetric positive-definite systems.

Standard (unpreconditioned or Jacobi-preconditioned) CG after Saad [21,
Alg. 9.1]; the matrix is applied through any callable operator, so the
same solver runs over the reference or the simulated-GPU SpMV path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import ConvergenceError, ValidationError
from ..types import VALUE_DTYPE

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    residual: float  #: final relative residual ||b - Ax|| / ||b||
    converged: bool
    residual_history: List[float]


def conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    jacobi_diagonal: Optional[np.ndarray] = None,
    raise_on_fail: bool = False,
) -> CGResult:
    """Solve ``A x = b`` with (optionally Jacobi-preconditioned) CG.

    Parameters
    ----------
    operator:
        Callable applying the SPD matrix ``A``.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros by default).
    tol:
        Relative-residual convergence tolerance.
    max_iter:
        Iteration budget.
    jacobi_diagonal:
        Optional matrix diagonal for Jacobi (diagonal) preconditioning.
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 1:
        raise ValidationError("b must be a vector")
    n = b.shape[0]
    x = np.zeros(n, dtype=VALUE_DTYPE) if x0 is None else np.array(x0, dtype=VALUE_DTYPE)
    if x.shape != (n,):
        raise ValidationError("x0 must match b's length")
    if max_iter <= 0:
        raise ValidationError("max_iter must be positive")

    precond = None
    if jacobi_diagonal is not None:
        diag = np.asarray(jacobi_diagonal, dtype=VALUE_DTYPE)
        if diag.shape != (n,) or np.any(diag == 0):
            raise ValidationError("jacobi_diagonal must be a zero-free vector")
        precond = 1.0 / diag

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(np.zeros(n), 0, 0.0, True, [0.0])

    r = b - operator(x)
    z = r * precond if precond is not None else r
    p = z.copy()
    rz = float(r @ z)
    history = [float(np.linalg.norm(r)) / b_norm]

    for it in range(1, max_iter + 1):
        ap = operator(p)
        pap = float(p @ ap)
        if pap <= 0:
            raise ConvergenceError(
                "matrix is not positive definite (p^T A p <= 0)", it, history[-1]
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        res = float(np.linalg.norm(r)) / b_norm
        history.append(res)
        if res < tol:
            return CGResult(x, it, res, True, history)
        z = r * precond if precond is not None else r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new

    if raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {max_iter} iterations", max_iter, history[-1]
        )
    return CGResult(x, max_iter, history[-1], False, history)
