"""Restarted GMRES for general (unsymmetric) systems.

GMRES(restart) after Saad [21, Alg. 6.9]: Arnoldi with modified
Gram-Schmidt, Givens-rotation least squares, restart on budget. The paper
names GMRES alongside CG as the iterative methods whose SpMV bottleneck
BRO accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import ConvergenceError, ValidationError
from ..types import VALUE_DTYPE

__all__ = ["GMRESResult", "gmres"]


@dataclass
class GMRESResult:
    """Outcome of a GMRES solve."""

    x: np.ndarray
    iterations: int  #: total inner iterations (SpMV applications - 1 per restart)
    residual: float  #: final relative residual
    converged: bool
    residual_history: List[float]


def gmres(
    operator: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    restart: int = 30,
    max_iter: int = 1000,
    raise_on_fail: bool = False,
) -> GMRESResult:
    """Solve ``A x = b`` with restarted GMRES."""
    b = np.asarray(b, dtype=VALUE_DTYPE)
    if b.ndim != 1:
        raise ValidationError("b must be a vector")
    n = b.shape[0]
    if restart <= 0 or max_iter <= 0:
        raise ValidationError("restart and max_iter must be positive")
    x = np.zeros(n, dtype=VALUE_DTYPE) if x0 is None else np.array(x0, dtype=VALUE_DTYPE)
    if x.shape != (n,):
        raise ValidationError("x0 must match b's length")

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return GMRESResult(np.zeros(n), 0, 0.0, True, [0.0])

    history: List[float] = []
    total_inner = 0

    while total_inner < max_iter:
        r = b - operator(x)
        beta = float(np.linalg.norm(r))
        res = beta / b_norm
        history.append(res)
        if res < tol:
            return GMRESResult(x, total_inner, res, True, history)

        m = min(restart, max_iter - total_inner)
        V = np.zeros((m + 1, n), dtype=VALUE_DTYPE)
        H = np.zeros((m + 1, m), dtype=VALUE_DTYPE)
        cs = np.zeros(m, dtype=VALUE_DTYPE)
        sn = np.zeros(m, dtype=VALUE_DTYPE)
        g = np.zeros(m + 1, dtype=VALUE_DTYPE)
        V[0] = r / beta
        g[0] = beta

        j_used = 0
        for j in range(m):
            w = operator(V[j])
            total_inner += 1
            # Modified Gram-Schmidt.
            for i in range(j + 1):
                H[i, j] = float(w @ V[i])
                w -= H[i, j] * V[i]
            H[j + 1, j] = float(np.linalg.norm(w))
            happy_breakdown = H[j + 1, j] <= 1e-14
            if not happy_breakdown:
                V[j + 1] = w / H[j + 1, j]
            # Apply previous Givens rotations to the new column.
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            # New rotation annihilating H[j+1, j].
            denom = float(np.hypot(H[j, j], H[j + 1, j]))
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            j_used = j + 1
            res = abs(float(g[j + 1])) / b_norm
            history.append(res)
            if res < tol or happy_breakdown:
                break

        # Solve the triangular system and update x.
        if j_used:
            y = np.linalg.solve(H[:j_used, :j_used], g[:j_used])
            x = x + V[:j_used].T @ y

        if history[-1] < tol:
            r = b - operator(x)
            res = float(np.linalg.norm(r)) / b_norm
            history.append(res)
            if res < tol:
                return GMRESResult(x, total_inner, res, True, history)

    if raise_on_fail:
        raise ConvergenceError(
            f"GMRES did not converge in {max_iter} iterations",
            total_inner,
            history[-1],
        )
    return GMRESResult(x, total_inner, history[-1], False, history)
