"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish the failure class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "FormatError",
    "CompressionError",
    "DecompressionError",
    "DeviceError",
    "KernelError",
    "ReorderingError",
    "ConvergenceError",
    "MatrixMarketError",
    "IntegrityError",
    "ShardTimeoutError",
    "WorkerFailureError",
    "ServeError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, range, ...)."""


class FormatError(ReproError):
    """A sparse-matrix storage format is malformed or inconsistent."""


class CompressionError(ReproError):
    """Host-side (offline) compression of index data failed."""


class DecompressionError(ReproError):
    """Device-side (simulated) decompression produced inconsistent data."""


class DeviceError(ReproError):
    """A simulated GPU device was misconfigured or is unknown."""


class KernelError(ReproError):
    """A simulated kernel launch was invalid (bad geometry, bad operands)."""


class ReorderingError(ReproError):
    """A matrix reordering routine failed or produced an invalid permutation."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class MatrixMarketError(ReproError):
    """A MatrixMarket file could not be parsed or written."""


class IntegrityError(ReproError):
    """Stored data failed an integrity check (checksum or structure).

    Carries the names of the fields whose checksums (or structural
    invariants) did not match, so callers can report *where* a container
    was corrupted, not just that it was.
    """

    def __init__(self, message: str, fields: tuple = ()) -> None:
        super().__init__(message)
        self.fields = tuple(fields)


class ShardTimeoutError(ReproError):
    """A shard missed its per-shard execution deadline.

    Raised by both sharded backends when ``policy.shard_timeout_s`` is
    set: the thread engine raises it directly when a shard future does
    not complete in time, and the process engine raises it once a
    stalled shard has exhausted its retry budget. Carries the shard
    index and the deadline that was missed.
    """

    def __init__(self, message: str, shard: int = -1,
                 timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.shard = int(shard)
        self.timeout_s = float(timeout_s)


class WorkerFailureError(ReproError):
    """A shard could not be completed by the process-worker pool.

    Raised when a shard's retry budget is exhausted by worker deaths or
    corrupt shard results, or when no live worker remains to take a
    reassigned shard. Carries the shard index and the per-attempt
    failure descriptions accumulated before giving up.
    """

    def __init__(self, message: str, shard: int = -1,
                 attempts: tuple = ()) -> None:
        super().__init__(message)
        self.shard = int(shard)
        self.attempts = tuple(attempts)


class ServeError(ReproError):
    """A failure inside the serving layer (:mod:`repro.serve`).

    Covers protocol violations (malformed wire frames, unknown ops),
    unknown matrices in a :class:`~repro.serve.pool.MatrixPool` and
    server-lifecycle misuse. Execution failures inside a request are
    reported in-band as error responses, not raised at the transport.
    """


class AdmissionError(ServeError):
    """The serving layer refused a request at admission (HTTP-429-like).

    Raised (server side) and reported as a ``status="rejected"``
    response (wire side) when the bounded request queue is full or the
    server is draining for shutdown. Carries the queue depth observed at
    rejection time and the configured bound so clients can implement
    informed backoff.
    """

    def __init__(self, message: str, queue_depth: int = -1,
                 max_queue: int = -1) -> None:
        super().__init__(message)
        self.queue_depth = int(queue_depth)
        self.max_queue = int(max_queue)
