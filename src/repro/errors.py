"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish the failure class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "FormatError",
    "CompressionError",
    "DecompressionError",
    "DeviceError",
    "KernelError",
    "ReorderingError",
    "ConvergenceError",
    "MatrixMarketError",
    "IntegrityError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, range, ...)."""


class FormatError(ReproError):
    """A sparse-matrix storage format is malformed or inconsistent."""


class CompressionError(ReproError):
    """Host-side (offline) compression of index data failed."""


class DecompressionError(ReproError):
    """Device-side (simulated) decompression produced inconsistent data."""


class DeviceError(ReproError):
    """A simulated GPU device was misconfigured or is unknown."""


class KernelError(ReproError):
    """A simulated kernel launch was invalid (bad geometry, bad operands)."""


class ReorderingError(ReproError):
    """A matrix reordering routine failed or produced an invalid permutation."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class MatrixMarketError(ReproError):
    """A MatrixMarket file could not be parsed or written."""


class IntegrityError(ReproError):
    """Stored data failed an integrity check (checksum or structure).

    Carries the names of the fields whose checksums (or structural
    invariants) did not match, so callers can report *where* a container
    was corrupted, not just that it was.
    """

    def __init__(self, message: str, fields: tuple = ()) -> None:
        super().__init__(message)
        self.fields = tuple(fields)
