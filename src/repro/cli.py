"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``devices``
    Print the simulated GPU registry (paper Table 1).
``matrices``
    List the Table 2 suite with its published statistics.
``analyze <matrix>``
    Generate (or load) a matrix and print its statistics.
``compress <matrix>``
    Compress with a BRO format and print the space-savings report.
``spmv <matrix>``
    Run one simulated SpMV and print the timing breakdown; ``--save``
    persists the converted container as a ``.brx`` file, and ``<matrix>``
    may itself be a saved ``.brx`` container. ``--devices N`` shards the
    run across N simulated devices (``--partition``/``--comms`` select
    the row partitioner and x-distribution strategy).
``scale <matrix>``
    Scaling sweep: run the sharded engine across a list of device counts
    (``--devices 1,2,4,8``) and report modeled speedup/efficiency with
    the interconnect term broken out. ``--weak`` switches to the
    weak-scaling experiment (matrix grows with the device count at fixed
    work per device) and ``--backend process`` runs the sweep on the
    fault-tolerant worker pool.
``chaos``
    Chaos-engineering campaign: inject seeded faults (worker kills,
    stalls, corrupted shard results, container bit flips) into sharded
    executions and assert the zero-silent-corruption contract — every
    injected fault either recovers to a bit-identical product or raises
    a typed error. Exits non-zero on any silent corruption.
``formats``
    Print the format capability matrix (kernel, planner, tracer, tuner,
    validator, integrity, serializer) straight from the registry.
``advise <matrix>``
    Rank all storage formats for the matrix on a device.
``bench <experiment>``
    Regenerate one of the paper's tables/figures and print its rows;
    ``--save`` writes a ``BENCH_<experiment>.json`` report and
    ``--compare <baseline.json>`` reruns at the baseline's scale and fails
    on regressions.
``profile <matrix>``
    Trace one full pipeline run (load, convert, seal, verified dispatch,
    kernel) and print the span tree plus the roofline attribution — or
    export it as JSONL, Chrome trace-event JSON or Prometheus text.
``export <matrix> <out.mtx>``
    Write a generated suite matrix to a MatrixMarket file.
``selfcheck``
    Quick internal verification (formats, kernels, calibration).
``verify``
    Integrity check + seeded fault-injection campaign over the registered
    formats; prints a detection/recovery table and exits non-zero on any
    silent corruption.

``<matrix>`` is either a Table 2 name (generated synthetically at
``--scale``) or a path to a MatrixMarket ``.mtx`` file.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from . import registry as _registry
from .bench import experiments as exp
from .bench.reporting import format_table
from .core.compression import index_compression_report
from .errors import ReproError
from .exec.policy import PARTITIONERS, ExecutionPolicy
from .formats.conversion import convert
from .formats.coo import COOMatrix
from .gpu.device import DEVICES
from .kernels.dispatch import run_spmv
from .matrices.analysis import analyze
from .matrices.io import read_matrix_market
from .matrices.suite import TABLE2, generate
from .pipeline import Session
from .tuner.advisor import rank_formats

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": (exp.table1_devices, ["device", "compute_capability", "cores",
                                    "mem_bw_gbps", "dp_gflops"]),
    "table2": (exp.table2_suite, ["matrix", "rows", "cols", "nnz", "mu",
                                  "mu_paper", "sigma", "sigma_paper"]),
    "table3": (exp.table3_savings, ["matrix", "eta_pct", "kappa"]),
    "table4": (exp.table4_hyb_split, ["matrix", "pct_bro_ell", "eta_pct"]),
    "table5": (exp.table5_bar_savings, ["matrix", "eta_before_pct",
                                        "eta_after_pct", "delta_pp"]),
    "fig3": (exp.fig3_savings_sweep, ["device", "bits", "eta_pct", "gflops",
                                      "speedup"]),
    "fig4": (exp.fig4_bro_ell, ["matrix", "device", "gflops_ellpack",
                                "gflops_bro_ell", "speedup_vs_ellpack"]),
    "fig5": (exp.fig5_eai, ["matrix", "eai_ellpack", "eai_bro_ell",
                            "eai_ratio"]),
    "fig6": (exp.fig6_bandwidth, ["matrix", "device", "bw_utilization"]),
    "fig7": (exp.fig7_bro_coo, ["matrix", "device", "gflops_coo",
                                "gflops_bro_coo", "speedup_vs_coo"]),
    "fig8": (exp.fig8_bro_hyb, ["matrix", "device", "gflops_hyb",
                                "gflops_bro_hyb", "speedup_vs_hyb"]),
    "fig9": (exp.fig9_reordering, ["matrix", "gflops_bro_ell", "gflops_bar",
                                   "bar_gain_pct", "rcm_gain_pct",
                                   "amd_gain_pct"]),
    "wallclock": (exp.wallclock_engines, ["matrix", "format", "mode",
                                          "backend", "build_time_ms",
                                          "ref_time_ms", "fast_time_ms",
                                          "speedup", "ratio"]),
    "scale": (exp.scale_bench, ["matrix", "devices", "backend", "speedup",
                                "efficiency", "wallclock_ms", "p50_ms",
                                "p95_ms", "p99_ms"]),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _load_matrix(spec: str, scale: float) -> COOMatrix:
    if spec in TABLE2:
        return generate(spec, scale=scale)
    if spec.endswith(".mtx"):
        return read_matrix_market(spec)
    raise ReproError(
        f"{spec!r} is neither a Table 2 matrix name nor a .mtx path; "
        f"known names: {', '.join(sorted(TABLE2))}"
    )


def _conversion_kwargs(fmt: str, args: argparse.Namespace) -> dict:
    """Conversion overrides from the shared --h/--sym-len flags."""
    spec = _registry.get_spec(fmt)
    kwargs: dict = {}
    if spec.accepts("h"):
        kwargs["h"] = args.h
    if getattr(args, "sym_len", None) is not None and spec.accepts("sym_len"):
        kwargs["sym_len"] = args.sym_len
    return kwargs


def _suite_kwargs(fmt: str, h: int) -> dict:
    """Conversion overrides for a self-check sweep, asked of the registry."""
    spec = _registry.get_spec(fmt)
    kwargs: dict = {}
    if spec.accepts("h"):
        kwargs["h"] = h
    if spec.accepts("threads_per_row"):
        kwargs["threads_per_row"] = 2
    return kwargs


def _device_list(text: str) -> List[int]:
    """Parse a ``--devices`` sweep list like ``1,2,4,8``."""
    try:
        counts = sorted({int(part) for part in text.split(",") if part})
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated integer list, got {text!r}"
        )
    if not counts or counts[0] < 1:
        raise argparse.ArgumentTypeError(
            f"device counts must be positive integers, got {text!r}"
        )
    return counts


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs).

    Subcommands share one spelling for the common flags via argparse
    parent parsers: ``--scale``, ``--device``, ``--json`` and the
    conversion trio ``--format``/``--h``/``--sym-len``. ``--format``
    always names the *storage* format; machine-readable output is always
    ``--json`` (``profile`` adds ``--export`` for its non-JSON trace
    formats).
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BRO sparse formats + simulated-GPU SpMV (SC '13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups — one definition, one spelling, every subcommand.
    matrix_p = argparse.ArgumentParser(add_help=False)
    matrix_p.add_argument("matrix", help="Table 2 name or a .mtx file path")
    matrix_p.add_argument("--scale", type=float, default=0.05,
                          help="generation scale for suite names "
                               "(default 0.05)")
    device_p = argparse.ArgumentParser(add_help=False)
    device_p.add_argument("--device", default="k20", choices=sorted(DEVICES))
    json_p = argparse.ArgumentParser(add_help=False)
    json_p.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    def conv_parent(default_format: str = "bro_ell",
                    default_sym_len: Optional[int] = None,
                    ) -> argparse.ArgumentParser:
        # A fresh parent per subcommand: argparse parents share action
        # objects, so per-subcommand defaults must not mutate a shared one.
        cp = argparse.ArgumentParser(add_help=False)
        cp.add_argument("--format", default=default_format,
                        help=f"storage format (default {default_format})")
        cp.add_argument("--h", type=int, default=256, help="slice height")
        cp.add_argument("--sym-len", type=int, default=default_sym_len,
                        choices=[32, 64], dest="sym_len",
                        help="symbol length in bits (format default if unset)")
        return cp

    sub.add_parser("devices", help="print the simulated GPU registry")
    sub.add_parser("matrices", help="list the Table 2 matrix suite")
    sub.add_parser("selfcheck", help="quick internal verification")

    sub.add_parser("formats", parents=[json_p],
                   help="print the format capability matrix")

    p = sub.add_parser("verify", parents=[device_p, json_p],
                       help="integrity check + fault-injection campaign")
    p.add_argument("--faults", type=_positive_int, default=150,
                   help="faults to inject across the BRO formats (default 150)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")

    sub.add_parser("analyze", parents=[matrix_p, json_p],
                   help="matrix statistics")

    sub.add_parser("compress",
                   parents=[matrix_p, conv_parent(default_sym_len=32)],
                   help="BRO compression report")

    p = sub.add_parser("spmv",
                       parents=[matrix_p, device_p, conv_parent(), json_p],
                       help="run one simulated SpMV")
    p.add_argument("--devices", type=_positive_int, default=1, metavar="N",
                   help="shard across N simulated devices (default 1)")
    p.add_argument("--partition", default="greedy-nnz",
                   choices=sorted(PARTITIONERS),
                   help="row partitioner for --devices > 1")
    p.add_argument("--comms", default="auto",
                   choices=["auto", "broadcast", "halo"],
                   help="x-distribution strategy for --devices > 1")
    p.add_argument("--engine", default="auto",
                   choices=["auto", "fast", "reference"],
                   help="execution engine (default auto)")
    p.add_argument("--backend", default="thread",
                   choices=["thread", "process"],
                   help="sharded execution backend for --devices > 1 "
                        "(default thread)")
    p.add_argument("--plan-cache", default="on", choices=["on", "off"],
                   dest="plan_cache",
                   help="use the process-wide prepared-plan cache "
                        "(default on)")
    p.add_argument("--trace", action="store_true",
                   help="print the format's per-block profile (formats with "
                        "a registered tracer; see `repro formats`)")
    p.add_argument("--save", metavar="PATH",
                   help="write the converted, sealed container to a .brx file")

    p = sub.add_parser("scale",
                       parents=[device_p, conv_parent("csr"), json_p],
                       help="strong/weak-scaling sweep across simulated "
                            "devices")
    # The matrix is only meaningful for strong scaling; weak scaling
    # generates its own growing problem, so the positional is optional.
    p.add_argument("matrix", nargs="?", default=None,
                   help="Table 2 name or a .mtx file path (required "
                        "unless --weak)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="generation scale for suite names (default 0.05)")
    p.add_argument("--devices", type=_device_list, default=[1, 2, 4, 8],
                   metavar="LIST",
                   help="comma-separated device counts (default 1,2,4,8)")
    p.add_argument("--partition", default="greedy-nnz",
                   choices=sorted(PARTITIONERS),
                   help="row partitioner (default greedy-nnz)")
    p.add_argument("--comms", default="auto",
                   choices=["auto", "broadcast", "halo"],
                   help="x-distribution strategy (default auto)")
    p.add_argument("--backend", default="thread",
                   choices=["thread", "process"],
                   help="sharded execution backend (default thread)")
    p.add_argument("--weak", action="store_true",
                   help="weak scaling: grow the matrix with the device "
                        "count at fixed work per device (ignores <matrix>)")
    p.add_argument("--rows-per-device", type=_positive_int, default=256,
                   dest="rows_per_device", metavar="N",
                   help="weak-scaling work per device (default 256 rows)")

    p = sub.add_parser("chaos", parents=[device_p, json_p],
                       help="fault-injection campaign against the sharded "
                            "engines (zero-silent-corruption gate)")
    p.add_argument("--campaign", action="store_true",
                   help="accepted for symmetry with `repro verify`; the "
                        "campaign is the only mode")
    p.add_argument("--workers", type=_positive_int, default=4,
                   help="worker processes / shards per trial (default 4)")
    p.add_argument("--formats", default="bro_ell,csr",
                   help="comma-separated storage formats "
                        "(default bro_ell,csr)")
    p.add_argument("--kinds", default=None,
                   help="comma-separated fault kinds (default: kill-worker,"
                        "stall-worker,corrupt-shard-result,stream_bit_flip)")
    p.add_argument("--repeats", type=_positive_int, default=1,
                   help="trials per (format, kind) cell (default 1)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--backend", default="process",
                   choices=["thread", "process"],
                   help="sharded backend under test (default process)")
    p.add_argument("--timeout", type=float, default=1.0, metavar="S",
                   help="per-shard deadline in seconds (default 1.0)")
    p.add_argument("--retries", type=_positive_int, default=3,
                   help="per-shard retry budget (default 3)")
    p.add_argument("--output", metavar="PATH",
                   help="also write the campaign report JSON to PATH")

    p = sub.add_parser("health", parents=[device_p, json_p],
                       help="run a short sharded workload and grade it "
                            "against SLO thresholds")
    p.add_argument("matrix", nargs="?", default="cant",
                   help="Table 2 matrix name (default cant)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="generation scale (default 0.05)")
    p.add_argument("--format", default="csr",
                   help="storage format for the probe (default csr)")
    p.add_argument("--devices", type=_positive_int, default=4,
                   help="shard/worker count (default 4)")
    p.add_argument("--calls", type=_positive_int, default=3,
                   help="sharded SpMV calls to probe with (default 3)")
    p.add_argument("--max-p99-ms", type=float, default=2000.0,
                   help="per-worker p99 latency SLO in ms (default 2000)")
    p.add_argument("--max-heartbeat-age", type=float, default=2.0,
                   metavar="S",
                   help="max worker heartbeat age in seconds (default 2.0)")
    p.add_argument("--max-worker-deaths", type=int, default=0,
                   help="max tolerated worker deaths (default 0)")
    p.add_argument("--max-retries", type=int, default=0,
                   help="max tolerated shard retries (default 0)")
    p.add_argument("--min-bw-util", type=float, default=0.05,
                   help="min achieved-vs-roofline bandwidth fraction "
                        "(default 0.05)")

    sub.add_parser("advise", parents=[matrix_p, device_p],
                   help="rank formats for a matrix")

    p = sub.add_parser("export", parents=[matrix_p],
                       help="write a suite matrix to .mtx")
    p.add_argument("output", help="destination .mtx path")

    p = sub.add_parser("bench", parents=[json_p],
                       help="regenerate one paper experiment")
    p.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    p.add_argument("--scale", type=float, default=None,
                   help="matrix scale (defaults per experiment)")
    p.add_argument("--plot", action="store_true",
                   help="also render an ASCII chart of the experiment")
    p.add_argument("--save", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="write a BENCH_<experiment>.json report "
                        "(optionally to PATH)")
    p.add_argument("--compare", metavar="BASELINE",
                   help="compare against a baseline BENCH json (rerun at its "
                        "recorded scale); exit 1 on regressions")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="relative regression threshold (default 0.05)")
    p.add_argument("--min-speedup", type=float, default=None, metavar="X",
                   help="fail unless every row's 'speedup' column is >= X "
                        "(used by the wallclock perf-smoke gate)")

    p = sub.add_parser(
        "profile", parents=[matrix_p, device_p, conv_parent(), json_p],
        help="trace one full pipeline run and attribute time",
    )
    p.add_argument("--storage", dest="format", metavar="FORMAT",
                   help="alias for --format")
    p.add_argument("--export", default="table",
                   choices=["table", "json", "chrome", "prom"],
                   help="trace export format (default table; --json is "
                        "shorthand for --export json)")
    p.add_argument("--output", metavar="PATH",
                   help="write the export to PATH instead of stdout")
    p.add_argument("--devices", type=int, default=1,
                   help="shard the dispatch across N simulated devices "
                        "(default 1)")
    p.add_argument("--backend", choices=["thread", "process"],
                   default="thread",
                   help="sharded execution backend; 'process' grafts "
                        "worker spans into the trace (default thread)")

    p = sub.add_parser("serve", parents=[device_p],
                       help="run the long-lived SpMV server over a pool "
                            "of warm matrices")
    p.add_argument("--matrix", action="append", default=None, metavar="NAME",
                   help="Table 2 name or .brx path to pool (repeatable; "
                        "default: qcd5_4)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="generation scale for suite names (default 0.05)")
    p.add_argument("--format", default="bro_ell",
                   help="storage format for suite matrices (default bro_ell)")
    p.add_argument("--h", type=int, default=64,
                   help="slice height for suite conversion (default 64; "
                        "calibrated for multi-RHS amortization)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port; 0 picks an ephemeral port (default 0)")
    p.add_argument("--max-queue", type=_positive_int, default=256,
                   dest="max_queue",
                   help="admission bound on in-flight requests (default 256)")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   dest="batch_window_ms",
                   help="micro-batch coalescing window in ms (default 2.0)")
    p.add_argument("--max-batch", type=_positive_int, default=16,
                   dest="max_batch",
                   help="max coalesced vectors per kernel call (default 16)")
    p.add_argument("--executor-threads", type=_positive_int, default=4,
                   dest="executor_threads",
                   help="kernel executor thread-pool width (default 4)")

    p = sub.add_parser("serve-bench", parents=[json_p],
                       help="micro-batched serving throughput vs the "
                            "unbatched serial baseline")
    p.add_argument("--matrix", default="qcd5_4",
                   help="Table 2 matrix name (default qcd5_4)")
    p.add_argument("--scale", type=float, default=None,
                   help="matrix scale (default 0.05, or the baseline's "
                        "recorded scale under --compare)")
    p.add_argument("--format", default="bro_ell",
                   help="storage format (default bro_ell)")
    p.add_argument("--device", default="k20", choices=sorted(DEVICES))
    p.add_argument("--requests", type=_positive_int, default=256,
                   help="total requests per phase (default 256)")
    p.add_argument("--concurrency", type=_positive_int, default=16,
                   help="concurrent in-flight requests (default 16)")
    p.add_argument("--max-batch", type=_positive_int, default=16,
                   dest="max_batch",
                   help="micro-batch size bound (default 16 == concurrency "
                        "so every wave flushes on size, not the window)")
    p.add_argument("--window-ms", type=float, default=2.0, dest="window_ms",
                   help="micro-batch window in ms (default 2.0)")
    p.add_argument("--h", type=int, default=64,
                   help="slice height (default 64; calibrated so the "
                        "multi-RHS replay stays cache-resident)")
    p.add_argument("--seed", type=int, default=1234,
                   help="vector/matrix seed (default 1234)")
    p.add_argument("--save", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="write a BENCH_serve.json report (optionally to "
                        "PATH)")
    p.add_argument("--compare", metavar="BASELINE",
                   help="compare against a baseline BENCH_serve.json (rerun "
                        "at its recorded scale); exit 1 on regressions")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="relative regression threshold (default 0.05)")
    p.add_argument("--min-speedup", type=float, default=None, metavar="X",
                   dest="min_speedup",
                   help="fail unless batch_speedup >= X (the acceptance "
                        "gate uses 2.0)")
    return parser


def _cmd_devices() -> int:
    rows = exp.table1_devices()
    print(format_table(rows, ["device", "compute_capability", "cores",
                              "mem_bw_gbps", "dp_gflops", "measured_bw_gbps",
                              "decode_gops"],
                       "Simulated GPUs (paper Table 1 + calibration)"))
    return 0


def _cmd_matrices() -> int:
    rows = [
        {
            "matrix": s.name,
            "set": s.test_set,
            "rows": s.rows,
            "cols": s.cols,
            "nnz": s.nnz,
            "mu": s.mu,
            "sigma": s.sigma,
            "family": s.family,
        }
        for s in TABLE2.values()
    ]
    print(format_table(rows, ["matrix", "set", "rows", "cols", "nnz", "mu",
                              "sigma", "family"],
                       "Table 2 matrix suite (published statistics)"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    coo = _load_matrix(args.matrix, args.scale)
    stats = analyze(coo, args.matrix)
    if args.json:
        import json

        from .telemetry.benchreport import _json_default

        print(json.dumps({
            "matrix": stats.name,
            "rows": stats.rows,
            "cols": stats.cols,
            "nnz": stats.nnz,
            "mu": stats.mu,
            "sigma": stats.sigma,
            "min_row": stats.min_row,
            "max_row": stats.max_row,
            "mean_delta_bits": stats.mean_delta_bits,
            "mean_col_span": stats.mean_col_span,
        }, indent=2, sort_keys=True, default=_json_default))
        return 0
    print(f"matrix          : {stats.name}")
    print(f"shape           : {stats.rows} x {stats.cols}")
    print(f"non-zeros       : {stats.nnz}")
    print(f"row length      : mean {stats.mu:.2f}, std {stats.sigma:.2f}, "
          f"min {stats.min_row}, max {stats.max_row}")
    print(f"mean delta width: {stats.mean_delta_bits:.2f} bits "
          f"(lower = more BRO-compressible)")
    print(f"mean column span: {stats.mean_col_span:.1f}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.format not in ("bro_ell", "bro_coo", "bro_hyb"):
        raise ReproError(
            f"compress reports BRO index compression; --format must be "
            f"bro_ell, bro_coo or bro_hyb, got {args.format!r}"
        )
    coo = _load_matrix(args.matrix, args.scale)
    mat = convert(coo, args.format, **_conversion_kwargs(args.format, args))
    report = index_compression_report(mat, args.matrix)
    print(f"scheme            : {report.scheme}")
    print(f"original index    : {report.original_index_bytes:,} bytes")
    print(f"compressed index  : {report.compressed_index_bytes:,} bytes")
    print(f"space savings eta : {100 * report.eta:.1f}%")
    print(f"compression kappa : {report.kappa:.2f}x")
    return 0


def _cmd_spmv(args: argparse.Namespace) -> int:
    policy = ExecutionPolicy(
        engine=args.engine,
        devices=args.devices,
        partitioner=args.partition,
        comms=args.comms,
        backend=args.backend,
    )
    sess = Session(device=args.device, policy=policy)
    if args.plan_cache == "off":
        sess.policy = sess.policy.with_(plan_cache=None)
    sess.load(args.matrix, scale=args.scale)
    # A .brx container may already hold a sharded matrix; leave it alone.
    if sess.format_name not in (args.format, "sharded"):
        sess.convert(args.format, **_conversion_kwargs(args.format, args))
    x = np.random.default_rng(0).standard_normal(sess.matrix.shape[1])
    t_exec = time.perf_counter()
    result = sess.run(x)
    execute_ms = 1e3 * (time.perf_counter() - t_exec)
    if not np.allclose(result.y, sess.source.spmv(x), rtol=1e-8):
        raise ReproError("kernel verification failed")  # pragma: no cover
    t = result.timing
    c = result.counters
    comms = getattr(result, "comms", None)
    if args.json:
        import dataclasses
        import json

        from .serve.api import SpMVRequest, SpMVResponse
        from .telemetry.benchreport import _json_default

        meta = {
            "matrix": args.matrix,
            "format": sess.format_name,
            "device": t.device.name,
            "devices": getattr(result, "n_devices", 1),
            "time_us": t.time * 1e6,
            "occupancy": t.occupancy,
            "bound": t.bound,
            "gflops": t.gflops,
            "achieved_bw_gbps": t.achieved_bw_gbps,
            "bandwidth_utilization": t.bandwidth_utilization,
            "counters": dataclasses.asdict(c),
            "comms": comms.to_dict() if comms is not None else None,
        }
        # The CLI emits the same typed envelope the serving layer speaks
        # (repro.serve.api.SpMVResponse), with the simulation payload
        # under "meta" and the product vector elided.
        request = SpMVRequest(
            request_id="cli", matrix=args.matrix, x=x, tenant="cli"
        )
        response = SpMVResponse.success(
            request, result.y, format=sess.format_name,
            execute_ms=execute_ms, meta=meta,
        )
        print(json.dumps(response.to_wire(include_y=False), indent=2,
                         sort_keys=True, default=_json_default))
        return 0
    print(f"format     : {sess.format_name}   device: {t.device.name}")
    print(f"verified   : kernel output matches reference")
    if comms is not None:
        print(f"devices    : {result.n_devices} "
              f"(partition {result.partitioner}, comms {comms.strategy})")
        print(f"interlink  : {c.interconnect_bytes:,} bytes, "
              f"{comms.messages} messages, "
              f"t_comm {t.t_comm * 1e6:.2f} us")
    print(f"DRAM bytes : index {c.index_bytes:,} | values {c.value_bytes:,} "
          f"| x {c.x_bytes:,} | y {c.y_bytes:,} | aux {c.aux_bytes:,}")
    print(f"time       : {t.time * 1e6:.2f} us "
          f"(mem {t.t_mem * 1e6:.2f}, flop {t.t_flop * 1e6:.2f}, "
          f"decode {t.t_decode * 1e6:.2f}, launch {t.t_launch * 1e6:.2f})")
    print(f"occupancy  : {t.occupancy:.2f}   bound: {t.bound}")
    print(f"throughput : {t.gflops:.2f} GFlop/s   "
          f"{t.achieved_bw_gbps:.1f} GB/s "
          f"({100 * t.bandwidth_utilization:.0f}% of pin bandwidth)")
    if getattr(args, "trace", False):
        tracer = _registry.tracer_for(sess.format_name)
        if tracer is None:
            traced = [n for n in _registry.available_formats()
                      if _registry.tracer_for(n) is not None]
            raise ReproError(
                f"--trace is not available for format {sess.format_name!r}; "
                f"formats with a block tracer: {', '.join(traced)}"
            )
        print(f"\n{tracer.title}:")
        print(tracer.header())
        for tr in tracer.rows(sess.matrix, t.device):
            print(tr.row())
    if getattr(args, "save", None):
        sess.seal().save(args.save)
        print(f"\nwrote sealed {sess.format_name} container to {args.save}")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from .exec.scaling import strong_scaling, weak_scaling

    if args.weak:
        rows = weak_scaling(
            args.format,
            args.device,
            args.devices,
            rows_per_device=args.rows_per_device,
            partitioner=args.partition,
            comms=args.comms,
            backend=args.backend,
        )
        mode = "Weak"
        ratio_col = None
    else:
        if args.matrix is None:
            print("error: a matrix name is required for strong scaling "
                  "(pass one, or use --weak)", file=sys.stderr)
            return 2
        coo = _load_matrix(args.matrix, args.scale)
        mat = convert(coo, args.format,
                      **_conversion_kwargs(args.format, args))
        rows = strong_scaling(
            mat,
            args.device,
            args.devices,
            partitioner=args.partition,
            comms=args.comms,
            backend=args.backend,
        )
        mode = "Strong"
        ratio_col = "speedup"
    if args.json:
        import json

        print(json.dumps({
            "matrix": None if args.weak else args.matrix,
            "mode": mode.lower(),
            "scale": args.scale,
            "format": args.format,
            "device": args.device,
            "partition": args.partition,
            "backend": args.backend,
            "rows": rows,
        }, indent=2, sort_keys=True))
        return 0
    printable = []
    for r in rows:
        row = {
            "devices": r["devices"],
            "comms": r["comms"] or "-",
            "t_total_us": 1e6 * r["t_total"],
            "t_kernel_us": 1e6 * r["t_kernel"],
            "t_comm_us": 1e6 * r["t_comm"],
            "gflops": r["gflops"],
            "link_bytes": r["interconnect_bytes"],
            "efficiency": r["efficiency"],
            "bound": r["bound"],
        }
        if ratio_col:
            row["speedup"] = r["speedup"]
        if args.weak:
            row["rows"] = r["rows"]
        printable.append(row)
    columns = ["devices"] + (["rows"] if args.weak else []) + [
        "comms", "t_total_us", "t_kernel_us", "t_comm_us", "gflops",
        "link_bytes",
    ] + (["speedup"] if ratio_col else []) + ["efficiency", "bound"]
    subject = args.format if args.weak else f"{args.matrix} as {args.format}"
    print(format_table(
        printable,
        columns,
        f"{mode} scaling: {subject} on {DEVICES[args.device].name} "
        f"({args.partition}, {args.backend} backend)",
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .exec.chaos import DEFAULT_CAMPAIGN_KINDS, run_chaos_campaign

    formats = tuple(f for f in args.formats.split(",") if f)
    kinds = (
        tuple(k for k in args.kinds.split(",") if k)
        if args.kinds else DEFAULT_CAMPAIGN_KINDS
    )
    report = run_chaos_campaign(
        formats=formats,
        kinds=kinds,
        workers=args.workers,
        repeats=args.repeats,
        seed=args.seed,
        device=args.device,
        backend=args.backend,
        shard_timeout_s=args.timeout,
        max_retries=args.retries,
    )
    doc = report.to_dict()
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        import json

        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_table(
            report.rows(),
            ["format", "fault", "injected", "recovered", "unaffected",
             "detected", "silent", "untyped"],
            f"Chaos campaign: {args.backend} backend, {args.workers} "
            f"workers, seed {args.seed}",
        ))
        print(f"\ncampaign: {report.injected} faults injected, "
              f"{report.recovered} recovered bit-identically, "
              f"{report.unaffected} unaffected, {report.detected} raised "
              f"typed errors, {report.silent} SILENT, "
              f"{report.untyped} untyped")
        if args.output:
            print(f"wrote campaign report to {args.output}")
    if not report.clean:
        if not args.json:
            print("chaos campaign FAILED: silent corruption or untyped "
                  "errors detected")
        return 1
    if not args.json:
        print("chaos campaign passed: zero silent corruption")
    return 0


def _cmd_formats(args: argparse.Namespace) -> int:
    rows = _registry.capability_matrix()
    if args.json:
        import json

        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    printable = []
    for row in rows:
        out = dict(row)
        out["default_kwargs"] = ",".join(
            f"{k}={v}" for k, v in sorted(row["default_kwargs"].items())
        ) or "-"
        for key in ("kernel", "planner", "tracer", "tuner", "validator",
                    "integrity", "serializer", "compiled"):
            out[key] = "yes" if row[key] else "-"
        out["codec"] = row["codec"] or "-"
        printable.append(out)
    from .kernels.backends import jit_available, numba_version

    jit_note = (
        f"Numba {numba_version()} importable — 'compiled' formats JIT"
        if jit_available()
        else "Numba not importable — 'compiled' formats fall back to numpy"
    )
    print(format_table(
        printable,
        ["format", "container", "kernel", "planner", "tracer", "tuner",
         "validator", "integrity", "serializer", "compiled", "codec",
         "default_kwargs"],
        "Format capability matrix (from repro.registry)",
    ))
    print(jit_note)
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    coo = _load_matrix(args.matrix, args.scale)
    ranking = rank_formats(coo, args.device)
    print(f"Format ranking for {args.matrix} on {DEVICES[args.device].name} "
          f"(model-predicted):")
    for i, rec in enumerate(ranking, 1):
        print(f"{i:2d}. {rec.describe()}")
    return 0


def _cmd_selfcheck() -> int:
    """A fast end-to-end verification a user can run after installing."""
    from .bench.experiments import fig3_break_even, fig3_savings_sweep
    from .matrices.generators import banded_random

    checks = 0
    coo = banded_random(2048, 12.0, 3.0, bandwidth=120, seed=42)
    x = np.random.default_rng(42).standard_normal(coo.shape[1])
    reference = coo.spmv(x)
    for fmt in _registry.kernel_formats():
        mat = convert(coo, fmt, **_suite_kwargs(fmt, h=128))
        if not np.allclose(mat.to_dense(), coo.to_dense()):
            print(f"FAIL: {fmt} round trip")
            return 1
        res = run_spmv(mat, x, "k20")
        if not np.allclose(res.y, reference, rtol=1e-8):
            print(f"FAIL: {fmt} kernel output")
            return 1
        checks += 2
        print(f"ok  {fmt}: lossless round trip + kernel verified")

    rows = fig3_savings_sweep(m=4096, k=32, bit_widths=(32, 16, 8, 1))
    measured = fig3_break_even(rows)
    for dev, paper in (("c2070", 17.0), ("gtx680", 9.0), ("k20", 23.0)):
        if abs(measured[dev] - paper) > 4.0:
            print(f"FAIL: {dev} break-even {measured[dev]:.1f}% vs {paper}%")
            return 1
        checks += 1
        print(f"ok  {dev}: break-even {measured[dev]:.1f}% (paper {paper}%)")
    print(f"\nselfcheck passed ({checks} checks)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Integrity self-check + seeded fault-injection campaign."""
    import tempfile
    from pathlib import Path

    from .integrity import (
        ARCHIVE_FAULT_KINDS,
        corrupt_archive,
        run_campaign,
        seal,
        validate_structure,
    )
    from .matrices.cache import load_matrix, save_matrix
    from .matrices.generators import banded_random

    json_mode = getattr(args, "json", False)
    emit = (lambda *a, **k: None) if json_mode else print
    failures = 0
    format_rows = []

    # 1. Verified round trip of every format that has a kernel: seal the
    #    container, dispatch under full verification, compare to reference.
    coo = banded_random(512, 10.0, 3.0, bandwidth=96, seed=args.seed)
    x = np.random.default_rng(args.seed).standard_normal(coo.shape[1])
    reference = coo.spmv(x)
    for fmt in _registry.kernel_formats():
        mat = seal(convert(coo, fmt, **_suite_kwargs(fmt, h=64)))
        try:
            validate_structure(mat, deep=True)
            res = run_spmv(
                mat, x, args.device, policy=ExecutionPolicy(verify="full")
            )
        except ReproError as exc:
            emit(f"FAIL {fmt}: verified dispatch raised {exc}")
            format_rows.append({"format": fmt, "ok": False, "error": str(exc)})
            failures += 1
            continue
        if not np.allclose(res.y, reference, rtol=1e-8):
            emit(f"FAIL {fmt}: verified kernel output mismatch")
            format_rows.append(
                {"format": fmt, "ok": False, "error": "output mismatch"}
            )
            failures += 1
            continue
        emit(f"ok  {fmt}: structure + checksums + verified kernel output")
        format_rows.append({"format": fmt, "ok": True, "error": None})

    # 2. The fault-injection campaign over the BRO formats.
    report = run_campaign(
        n_faults=args.faults, seed=args.seed, device=args.device
    )
    emit()
    emit(format_table(
        report.rows(),
        ["format", "fault", "injected", "detected", "recovered", "benign",
         "silent"],
        f"Fault-injection campaign ({report.injected} faults, "
        f"seed {args.seed})",
    ))
    emit(f"\ncampaign: {report.injected} injected, {report.detected} "
         f"detected, {report.recovered} recovered via CSR fallback, "
         f"{report.benign} benign, {report.silent} SILENT")
    if not report.clean:
        for r in report.silent_records()[:10]:
            emit(f"SILENT {r.format_name}/{r.kind}: {r.target}")
        failures += report.silent

    # 3. On-disk archive corruption: every corrupted cache file must be
    #    rejected by load_matrix with a typed error, never half-loaded.
    rng = np.random.default_rng(args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        archive_ok = 0
        archive_total = 0
        small = banded_random(64, 6.0, 2.0, bandwidth=20, seed=args.seed)
        for kind in ARCHIVE_FAULT_KINDS:
            for trial in range(4):
                path = Path(tmp) / f"{kind}_{trial}.npz"
                save_matrix(small, path)
                corrupt_archive(path, rng, kind=kind)
                archive_total += 1
                try:
                    loaded = load_matrix(path)
                except ReproError:
                    archive_ok += 1
                    continue
                # A flip can land in zip padding and leave the payload
                # intact; loading the exact original matrix is not silent
                # corruption.
                if (loaded.shape == small.shape
                        and np.array_equal(loaded.to_dense(), small.to_dense())):
                    archive_ok += 1
                else:
                    emit(f"FAIL cache: {kind} trial {trial} loaded corrupt data")
                    failures += 1
        emit(f"ok  cache archives: {archive_ok}/{archive_total} corruptions "
             "detected or harmless")

    if json_mode:
        import json

        print(json.dumps({
            "formats": format_rows,
            "campaign": {
                "injected": report.injected,
                "detected": report.detected,
                "recovered": report.recovered,
                "benign": report.benign,
                "silent": report.silent,
                "seed": args.seed,
            },
            "archive": {"ok": archive_ok, "total": archive_total},
            "failures": failures,
            "passed": failures == 0,
        }, indent=2, sort_keys=True))

    if failures:
        emit(f"\nverify FAILED ({failures} problem(s))")
        return 1
    emit("\nverify passed: zero silent corruption")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .matrices.io import write_matrix_market

    coo = _load_matrix(args.matrix, args.scale)
    write_matrix_market(coo, args.output)
    print(f"wrote {coo.shape[0]}x{coo.shape[1]} matrix "
          f"({coo.nnz} non-zeros) to {args.output}")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from .telemetry.health import HealthThresholds, run_health_check

    thresholds = HealthThresholds(
        max_p99_ms=args.max_p99_ms,
        max_heartbeat_age_s=args.max_heartbeat_age,
        max_worker_deaths=args.max_worker_deaths,
        max_retries=args.max_retries,
        min_bw_utilization=args.min_bw_util,
    )
    report = run_health_check(
        matrix=args.matrix,
        scale=args.scale,
        format_name=args.format,
        device=args.device,
        devices=args.devices,
        calls=args.calls,
        thresholds=thresholds,
    )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        rows = [
            {
                "check": r["check"],
                "worker": r.get("worker", "-"),
                "value": r["value"],
                "threshold": "-" if r["threshold"] is None else r["threshold"],
                "status": "ok" if r["ok"] else "BREACH",
            }
            for r in report.rows
        ]
        print(format_table(
            rows, ["check", "worker", "value", "threshold", "status"],
            f"Health probe: {report.matrix} x{report.calls} on "
            f"{report.devices} workers ({report.device})",
        ))
        verdict = "healthy" if report.healthy else "UNHEALTHY"
        print(f"\n{verdict}: "
              f"{sum(r['ok'] for r in report.rows)}/{len(report.rows)} "
              f"checks ok")
    return 0 if report.healthy else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .telemetry import benchreport as br

    fn, columns = _EXPERIMENTS[args.experiment]

    baseline = None
    scale = args.scale
    if args.compare:
        baseline = br.load_report(args.compare)
        if scale is None:
            # Rerun at the baseline's recorded scale so the simulated rows
            # are directly comparable.
            scale = baseline.get("scale")

    rows = fn() if scale is None else fn(scale=scale)
    if args.json:
        import json

        from .telemetry.benchreport import _json_default

        print(json.dumps({
            "experiment": args.experiment,
            "scale": scale,
            "rows": rows,
        }, indent=2, sort_keys=True, default=_json_default))
    else:
        print(format_table(rows, columns, f"Experiment {args.experiment}"))
        if args.plot:
            print()
            print(_render_plot(args.experiment, rows, columns))

    report = br.make_report(args.experiment, rows, scale=scale)
    if args.save is not None:
        path = args.save or br.default_report_path(args.experiment)
        br.write_report(report, path)
        print(f"\nwrote benchmark report to {path}")

    if baseline is not None:
        comp = br.compare_reports(baseline, report, threshold=args.threshold)
        print(f"\ncomparison vs {args.compare}: {comp.summary()}")
        if comp.deltas:
            print(format_table(
                [d.row() for d in comp.deltas],
                ["row", "metric", "baseline", "current", "delta_pct",
                 "status"],
                "Metrics beyond threshold",
            ))
        for key in comp.missing_rows:
            print(f"MISSING baseline row: {key}")
        if not comp.clean:
            print("bench comparison FAILED")
            return 1
        print("bench comparison passed: zero regressions")

    if args.min_speedup is not None:
        gated = [r for r in rows if "speedup" in r]
        slow = [r for r in gated if r["speedup"] < args.min_speedup]
        if not gated:
            print(f"\nmin-speedup gate FAILED: no rows carry a 'speedup' column")
            return 1
        if slow:
            print(f"\nmin-speedup gate FAILED ({args.min_speedup:.1f}x):")
            for r in slow:
                keys = [str(v) for v in r.values() if isinstance(v, str)]
                print(f"  {' '.join(keys)}: {r['speedup']:.2f}x")
            return 1
        worst = min(r["speedup"] for r in gated)
        print(f"\nmin-speedup gate passed: worst row {worst:.2f}x "
              f">= {args.min_speedup:.1f}x")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import MatrixPool, ServerConfig, serve

    names = args.matrix or ["qcd5_4"]
    pool = MatrixPool(device=args.device)
    for name in names:
        if name.endswith(".brx"):
            entry = pool.load(os.path.splitext(os.path.basename(name))[0],
                              name)
        else:
            entry = pool.load_suite(name, scale=args.scale,
                                    format=args.format, h=args.h)
        print(f"pooled {entry.name}: {entry.matrix.format_name} "
              f"{entry.matrix.shape[0]}x{entry.matrix.shape[1]} "
              f"nnz={entry.matrix.nnz}")
    warmed = pool.warm()
    print(f"warmed {warmed} plan(s) on {args.device}")
    serve(pool, ServerConfig(
        host=args.host,
        port=args.port,
        device=args.device,
        max_queue=args.max_queue,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        executor_threads=args.executor_threads,
    ))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serve import serve_bench
    from .telemetry import benchreport as br

    baseline = None
    scale = args.scale
    if args.compare:
        baseline = br.load_report(args.compare)
        if scale is None:
            scale = baseline.get("scale")
    if scale is None:
        scale = 0.05

    result = serve_bench(
        matrix=args.matrix,
        scale=scale,
        format=args.format,
        device=args.device,
        requests=args.requests,
        concurrency=args.concurrency,
        batch_window_ms=args.window_ms,
        max_batch=args.max_batch,
        h=args.h,
        seed=args.seed,
    )
    report = result["report"]
    summary = result["summary"]

    if args.json:
        import json

        from .telemetry.benchreport import _json_default

        print(json.dumps(report, indent=2, sort_keys=True,
                         default=_json_default))
    else:
        print(format_table(
            report["rows"],
            ["matrix", "format", "device", "concurrency", "requests",
             "max_batch", "batch_speedup", "serial_rps", "batched_rps",
             "mean_occupancy", "p50_ms", "p99_ms", "corrupted"],
            "serve-bench: micro-batched vs serial SpMV serving",
        ))
        print(f"\nbatch speedup   : {summary['batch_speedup']:.2f}x "
              f"(batched {summary['batched_rps']:.0f} rps vs serial "
              f"{summary['serial_rps']:.0f} rps)")
        print(f"mean occupancy  : {summary['mean_occupancy']:.2f} "
              f"vectors/kernel call")
        print(f"latency         : p50 {summary['p50_ms']:.2f} ms   "
              f"p99 {summary['p99_ms']:.2f} ms")
        print(f"bit-identity    : {args.requests - summary['corrupted']}"
              f"/{args.requests} responses identical to direct run_spmv")

    if args.save is not None:
        path = args.save or br.default_report_path("serve")
        br.write_report(report, path)
        print(f"\nwrote benchmark report to {path}")

    if baseline is not None:
        comp = br.compare_reports(baseline, report, threshold=args.threshold)
        print(f"\ncomparison vs {args.compare}: {comp.summary()}")
        if comp.deltas:
            print(format_table(
                [d.row() for d in comp.deltas],
                ["row", "metric", "baseline", "current", "delta_pct",
                 "status"],
                "Metrics beyond threshold",
            ))
        for key in comp.missing_rows:
            print(f"MISSING baseline row: {key}")
        if not comp.clean:
            print("serve-bench comparison FAILED")
            return 1
        print("serve-bench comparison passed: zero regressions")

    if args.min_speedup is not None:
        speedup = summary["batch_speedup"]
        if speedup < args.min_speedup:
            print(f"\nmin-speedup gate FAILED: batch_speedup "
                  f"{speedup:.2f}x < {args.min_speedup:.1f}x")
            return 1
        print(f"\nmin-speedup gate passed: {speedup:.2f}x "
              f">= {args.min_speedup:.1f}x")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .telemetry import exporters
    from .telemetry.profiler import profile_matrix

    rep = profile_matrix(
        args.matrix,
        storage=args.format,
        device=args.device,
        scale=args.scale,
        h=args.h,
        devices=args.devices,
        backend=args.backend,
    )

    export = "json" if args.json and args.export == "table" else args.export
    if export != "table":
        if export == "json":
            text = exporters.to_jsonl(rep.tracer)
        elif export == "chrome":
            text = exporters.to_chrome_trace(rep.tracer, indent=2)
        else:  # prom
            text = exporters.prometheus_text(rep.snapshot)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text if text.endswith("\n") else text + "\n")
            print(f"wrote {export} export to {args.output}")
        else:
            print(text, end="" if text.endswith("\n") else "\n")
        return 0

    t = rep.result.timing
    print(f"profile    : {rep.matrix} as {rep.storage} on {rep.device_name}")
    print(f"verified   : checksum-verified dispatch "
          f"(fault_detected={rep.result.fault_detected})")
    print(f"time       : {t.time * 1e6:.2f} us   bound: {t.bound}   "
          f"occupancy: {t.occupancy:.2f}")
    print(f"throughput : {t.gflops:.2f} GFlop/s   "
          f"{100 * t.bandwidth_utilization:.0f}% of pin bandwidth")

    print("\npipeline spans:")
    print(f"{'span':<44s} {'category':<10s} {'dur us':>10s}")
    for row in rep.span_rows():
        print(f"{row['span']:<44s} {row['category']:<10s} "
              f"{row['dur_us']:>10.1f}")

    print("\nroofline attribution:")
    print(f"{'component':<10s} {'us':>10s} {'exposed us':>11s} {'share':>7s}")
    for row in rep.attribution():
        print(f"{row['component']:<10s} {row['us']:>10.2f} "
              f"{row['exposed_us']:>11.2f} {row['share_pct']:>6.1f}%")

    block = rep.block_profile()
    if block is not None:
        header, rows = block
        print("\nper-block profile:")
        print(header)
        for line in rows:
            print(line)
    return 0


def _render_plot(experiment: str, rows, columns) -> str:
    from .bench.plots import bar_chart, line_chart

    if experiment == "fig3":
        series = {}
        for r in rows:
            series.setdefault(r["device"], []).append(
                (r["eta_pct"], r["gflops"])
            )
        for pts in series.values():
            pts.sort()
        return line_chart(series, "BRO-ELL GFlop/s vs space savings (%)")
    # Bar chart of the last numeric column, labelled by matrix/device.
    value_col = columns[-1]
    label_col = "matrix" if "matrix" in columns else columns[0]
    labels = [f"{r[label_col]}" + (f"/{r['device']}" if "device" in r else "")
              for r in rows]
    values = [max(0.0, float(r[value_col])) for r in rows]
    return bar_chart(labels, values, f"{experiment}: {value_col}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "devices":
            return _cmd_devices()
        if args.command == "matrices":
            return _cmd_matrices()
        if args.command == "formats":
            return _cmd_formats(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "compress":
            return _cmd_compress(args)
        if args.command == "spmv":
            return _cmd_spmv(args)
        if args.command == "scale":
            return _cmd_scale(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "advise":
            return _cmd_advise(args)
        if args.command == "selfcheck":
            return _cmd_selfcheck()
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "serve-bench":
            return _cmd_serve_bench(args)
        if args.command == "health":
            return _cmd_health(args)
        if args.command == "profile":
            return _cmd_profile(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
