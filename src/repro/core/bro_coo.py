"""BRO-COO: bit-representation-optimized coordinate format (Section 3.2).

Only the *row* index array is compressed. The sorted entry list is divided
into fixed-size intervals (one warp per interval); each interval is arranged
as a ``(w, L)`` 2-D array with lane ``i`` holding entries ``i, i + w, ...``
so that the row index increases monotonically down each lane, then
delta-encoded along lanes and packed with a *single* bit width per interval.
Column indices and values stay uncompressed.

Partial final intervals are padded with phantom entries that repeat the last
row index (a zero delta — valid in BRO-COO) and carry value 0.0, so the
decode loop needs no bounds checks (no divergence).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

import numpy as np

from ..bitstream.codec import LANE_DELTA, BROCodec
from ..bitstream.multiplex import MultiplexedStream
from ..errors import ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..registry import TunerProfile
from ..telemetry.tracer import span as _span
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.bits import ceil_div
from ..utils.validation import check_positive

__all__ = ["BROCOOMatrix"]

#: Maximum interval size in entries: 32 lanes x 32 iterations.
DEFAULT_INTERVAL = 1024

#: Interval count the adaptive sizing aims for — enough warps to keep
#: every modelled device's SMs latency-hidden (CUSP sizes its COO
#: intervals the same way: work divided by the number of active warps).
TARGET_INTERVALS = 512


def adaptive_interval_size(
    nnz: int, warp_size: int = 32, max_interval: int = DEFAULT_INTERVAL
) -> int:
    """Interval size that spreads ``nnz`` entries over enough warps.

    Small COO parts (the tail of a HYB split) would otherwise launch a
    handful of warps and starve the device.
    """
    if nnz <= 0:
        return warp_size
    per = ceil_div(nnz, TARGET_INTERVALS)
    per = ceil_div(per, warp_size) * warp_size
    # Keep at least 8 iterations per lane so the per-lane stream padding
    # (round-up to one symbol) stays amortized.
    return int(min(max(per, 8 * warp_size), max_interval))


@register_format(
    default_kwargs={"interval_size": None, "warp_size": 32, "sym_len": 32},
    tuner=TunerProfile(),
    codec=LANE_DELTA,
)
class BROCOOMatrix(SparseFormat):
    """Sparse matrix stored in the BRO-COO compressed format."""

    format_name = "bro_coo"

    def __init__(
        self,
        stream: MultiplexedStream,
        bit_alloc: np.ndarray,
        col_idx: np.ndarray,
        vals: np.ndarray,
        nnz: int,
        warp_size: int,
        interval_size: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        warp_size = check_positive(warp_size, "warp_size")
        interval_size = check_positive(interval_size, "interval_size")
        if interval_size % warp_size:
            raise ValidationError("interval_size must be a multiple of warp_size")
        bit_alloc = np.asarray(bit_alloc, dtype=np.int64).reshape(-1)
        col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if col_idx.shape != vals.shape or col_idx.ndim != 1:
            raise ValidationError("col_idx and vals must be equal-length 1-D arrays")
        padded = col_idx.shape[0]
        if padded % warp_size:
            raise ValidationError("padded entry count must be a multiple of warp_size")
        n_int = bit_alloc.shape[0]
        if stream.num_slices != n_int:
            raise ValidationError(
                f"stream holds {stream.num_slices} intervals, bit_alloc {n_int}"
            )
        if not 0 <= nnz <= padded:
            raise ValidationError("nnz must be within the padded entry count")
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValidationError("column index out of range")

        # Entries per interval: all full except possibly the last.
        if n_int:
            expected = (n_int - 1) * interval_size < padded <= n_int * interval_size
            if not expected:
                raise ValidationError(
                    f"{padded} padded entries inconsistent with {n_int} intervals "
                    f"of size {interval_size}"
                )
        elif padded:
            raise ValidationError("entries present but no intervals")

        self._stream = stream
        self._codec = BROCodec(stream.sym_len)
        self._bit_alloc = bit_alloc
        self._col_idx = col_idx
        self._vals = vals
        self._nnz = int(nnz)
        self._w = warp_size
        self._interval = interval_size
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def stream(self) -> MultiplexedStream:
        """Packed row-index stream, one multiplexed block per interval."""
        return self._stream

    @property
    def bit_alloc(self) -> np.ndarray:
        """Single bit width per interval."""
        return self._bit_alloc

    @property
    def col_idx(self) -> np.ndarray:
        """Uncompressed (padded) column indices in entry order."""
        return self._col_idx

    @property
    def vals(self) -> np.ndarray:
        """(Padded) values in entry order; padding entries hold 0.0."""
        return self._vals

    @property
    def warp_size(self) -> int:
        """Lanes per interval (``w`` in the paper)."""
        return self._w

    @property
    def interval_size(self) -> int:
        """Entries per full interval."""
        return self._interval

    @property
    def num_intervals(self) -> int:
        return self._bit_alloc.shape[0]

    @property
    def padded_nnz(self) -> int:
        """Entry count including the final interval's phantom padding."""
        return int(self._col_idx.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._nnz

    # ------------------------------------------------------------------
    def interval_entry_bounds(self, i: int) -> Tuple[int, int]:
        """Padded entry range ``[lo, hi)`` covered by interval ``i``."""
        if not 0 <= i < self.num_intervals:
            raise ValidationError(f"interval index {i} out of range")
        lo = i * self._interval
        hi = min(lo + self._interval, self.padded_nnz)
        return lo, hi

    def interval_lanes(self, i: int) -> int:
        """Iterations per lane (``L``) in interval ``i``."""
        lo, hi = self.interval_entry_bounds(i)
        return ceil_div(hi - lo, self._w)

    @property
    def codec(self) -> BROCodec:
        """The lane-delta codec this container was encoded with."""
        return self._codec

    def decode_interval_rows(self, i: int) -> np.ndarray:
        """Host-side decode of interval ``i``'s ``(w, L)`` row indices."""
        return self._codec.decode_lanes(
            self._stream.slice_view(i),
            int(self._bit_alloc[i]),
            self._w,
            self.interval_lanes(i),
        )

    def iter_intervals(self) -> Iterator[Tuple[int, int, int, np.ndarray]]:
        """Yield ``(interval, lo, hi, stream_view)`` per interval."""
        for i in range(self.num_intervals):
            lo, hi = self.interval_entry_bounds(i)
            yield i, lo, hi, self._stream.slice_view(i)

    @staticmethod
    def lane_arrangement(count: int, w: int) -> Tuple[np.ndarray, np.ndarray]:
        """Map entry offset ``t`` to 2-D position ``(lane, iter) = (t % w, t // w)``."""
        t = np.arange(count, dtype=np.int64)
        return t % w, t // w

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        interval_size: int | None = None,
        warp_size: int = 32,
        sym_len: int = 32,
        **kwargs,
    ) -> "BROCOOMatrix":
        if interval_size is None:
            interval_size = adaptive_interval_size(coo.nnz, warp_size)
        interval_size = check_positive(interval_size, "interval_size")
        warp_size = check_positive(warp_size, "warp_size")
        if interval_size % warp_size:
            raise ValidationError("interval_size must be a multiple of warp_size")
        nnz = coo.nnz
        n_int = ceil_div(nnz, interval_size) if nnz else 0
        # Pad the final interval to a whole number of lanes-iterations.
        padded = 0
        if n_int:
            tail = nnz - (n_int - 1) * interval_size
            padded = (n_int - 1) * interval_size + ceil_div(tail, warp_size) * warp_size
        col_idx = np.zeros(padded, dtype=INDEX_DTYPE)
        vals = np.zeros(padded, dtype=VALUE_DTYPE)
        row_idx = np.zeros(padded, dtype=np.int64)
        if nnz:
            col_idx[:nnz] = coo.col_idx
            vals[:nnz] = coo.vals
            row_idx[:nnz] = coo.row_idx
            row_idx[nnz:] = int(coo.row_idx[-1])  # phantom: repeat last row

        with _span("encode.bro_coo", "pipeline", intervals=n_int,
                   sym_len=sym_len):
            codec = BROCodec(sym_len)
            streams, widths = [], []
            for i in range(n_int):
                lo = i * interval_size
                hi = min(lo + interval_size, padded)
                L = ceil_div(hi - lo, warp_size)
                block = row_idx[lo:hi].reshape(L, warp_size).T  # lane i = t % w
                syms, b = codec.encode_lanes(block)
                widths.append(b)
                streams.append(syms)
            stream = codec.concat(streams)
        return cls(
            stream,
            np.array(widths, dtype=np.int64),
            col_idx,
            vals,
            nnz,
            warp_size,
            interval_size,
            coo.shape,
        )

    def decode_rows(self) -> np.ndarray:
        """Decode the full padded row-index array (entry order)."""
        out = np.zeros(self.padded_nnz, dtype=np.int64)
        for i in range(self.num_intervals):
            lo, hi = self.interval_entry_bounds(i)
            rows_2d = self.decode_interval_rows(i)  # (w, L)
            out[lo:hi] = rows_2d.T.reshape(-1)
        return out

    def to_coo(self) -> COOMatrix:
        rows = self.decode_rows()[: self._nnz]
        return COOMatrix(
            rows, self._col_idx[: self._nnz], self._vals[: self._nnz], self._shape
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "shape": list(self._shape),
            "nnz": self._nnz,
            "warp_size": self._w,
            "interval_size": self._interval,
            "sym_len": self._stream.sym_len,
        }
        arrays = {
            "stream": self._stream.data,
            "slice_ptr": self._stream.slice_ptr,
            "bit_alloc": self._bit_alloc,
            "col_idx": self._col_idx,
            "vals": self._vals,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "BROCOOMatrix":
        stream = MultiplexedStream(
            arrays["stream"], arrays["slice_ptr"], int(meta["sym_len"])
        )
        return cls(
            stream, arrays["bit_alloc"], arrays["col_idx"], arrays["vals"],
            int(meta["nnz"]), int(meta["warp_size"]),
            int(meta["interval_size"]), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        if self.padded_nnz:
            rows = self.decode_rows()
            # Phantom padding has value 0.0, so including it is harmless —
            # mirroring the divergence-free GPU loop.
            np.add.at(y, rows, self._vals * x[self._col_idx])
        return y

    def device_bytes(self) -> Dict[str, int]:
        return {
            "index": int(self._stream.nbytes + self._col_idx.nbytes),
            "values": int(self._vals.nbytes),
            # 1-byte widths + int32 interval pointers.
            "aux": int(
                self._bit_alloc.shape[0] + 4 * self._stream.slice_ptr.shape[0]
            ),
        }
