"""BRO-ELL: bit-representation-optimized ELLPACK (paper Section 3.1).

The format keeps the Sliced-ELLPACK partitioning (slice height ``h`` = the
thread-block size, 256 by default) and value layout, but replaces each
slice's dense column-index block with:

* ``bit_alloc_i`` — per-column bit widths (``b_j = max Gamma(delta)``),
  resident in constant memory on the real GPU;
* a multiplexed, delta-encoded, bit-packed index stream (Fig. 1).

Values are *not* compressed (the paper leaves value compression as future
work; we implement it separately in :mod:`repro.core.value_compression`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

import numpy as np

from ..bitstream.multiplex import MultiplexedStream, concat_slices
from ..bitstream.packing import pack_slice, unpack_slice
from ..errors import ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..formats.sliced_ellpack import SlicedELLPACKMatrix, slice_bounds
from ..registry import TunerProfile
from ..telemetry.tracer import span as _span
from ..types import VALUE_DTYPE
from ..utils.validation import check_positive
from .delta import delta_decode_columns, delta_encode_columns
from .slices import column_bit_alloc

__all__ = ["BROELLMatrix"]


@register_format(
    default_kwargs={"h": 256, "sym_len": 32},
    tuner=TunerProfile(sweep_h=True),
)
class BROELLMatrix(SparseFormat):
    """Sparse matrix stored in the BRO-ELL compressed format."""

    format_name = "bro_ell"

    def __init__(
        self,
        stream: MultiplexedStream,
        bit_allocs: Sequence[np.ndarray],
        vals: np.ndarray,
        row_lengths: np.ndarray,
        h: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        h = check_positive(h, "h")
        self._edges = slice_bounds(m, h)
        s = self._edges.shape[0] - 1
        if stream.num_slices != s:
            raise ValidationError(
                f"stream holds {stream.num_slices} slices, matrix needs {s}"
            )
        if len(bit_allocs) != s:
            raise ValidationError(f"need {s} bit_alloc arrays, got {len(bit_allocs)}")
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if row_lengths.shape != (m,):
            raise ValidationError("row_lengths must have one entry per row")
        self._bit_allocs = tuple(
            np.asarray(b, dtype=np.int64).reshape(-1) for b in bit_allocs
        )
        self._num_col = np.array([b.shape[0] for b in self._bit_allocs], dtype=np.int64)
        heights = np.diff(self._edges)
        block_sizes = heights * self._num_col
        expected = int(block_sizes.sum())
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if vals.shape != (expected,):
            raise ValidationError(
                f"vals must hold {expected} entries (sum of slice blocks), "
                f"got {vals.shape}"
            )
        self._val_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(block_sizes, out=self._val_ptr[1:])
        self._stream = stream
        self._vals = vals
        self._row_lengths = row_lengths
        self._h = h
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def stream(self) -> MultiplexedStream:
        """The packed, multiplexed index stream (``comp_str`` in Alg. 1)."""
        return self._stream

    @property
    def bit_allocs(self) -> Tuple[np.ndarray, ...]:
        """Per-slice ``bit_alloc_i`` width arrays."""
        return self._bit_allocs

    @property
    def num_col(self) -> np.ndarray:
        """Per-slice column counts (the paper's ``num_col`` array)."""
        return self._num_col

    @property
    def row_lengths(self) -> np.ndarray:
        """Real entries per row."""
        return self._row_lengths

    @property
    def h(self) -> int:
        """Slice height (thread-block size)."""
        return self._h

    @property
    def sym_len(self) -> int:
        """Symbol length of the packed stream in bits."""
        return self._stream.sym_len

    @property
    def num_slices(self) -> int:
        return self._edges.shape[0] - 1

    @property
    def slice_edges(self) -> np.ndarray:
        """Row boundaries of each slice."""
        return self._edges

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    # ------------------------------------------------------------------
    def val_block(self, i: int) -> np.ndarray:
        """Slice ``i``'s ``(h_i, l_i)`` value block (view)."""
        if not 0 <= i < self.num_slices:
            raise ValidationError(f"slice index {i} out of range")
        lo, hi = int(self._val_ptr[i]), int(self._val_ptr[i + 1])
        h_i = int(self._edges[i + 1] - self._edges[i])
        l_i = int(self._num_col[i])
        return self._vals[lo:hi].reshape(h_i, l_i)

    def iter_slices(
        self,
    ) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(row_start, row_end, bit_alloc, stream_view, val_block)``."""
        for i in range(self.num_slices):
            yield (
                int(self._edges[i]),
                int(self._edges[i + 1]),
                self._bit_allocs[i],
                self._stream.slice_view(i),
                self.val_block(i),
            )

    def decode_slice_cols(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Host-side decode of slice ``i``: ``(col_idx, valid)`` blocks."""
        h_i = int(self._edges[i + 1] - self._edges[i])
        deltas = unpack_slice(
            self._stream.slice_view(i), self._bit_allocs[i], h_i, self.sym_len
        )
        return delta_decode_columns(deltas)

    # ------------------------------------------------------------------
    @classmethod
    def from_sliced(
        cls, sl: SlicedELLPACKMatrix, sym_len: int = 32
    ) -> "BROELLMatrix":
        """Compress a Sliced-ELLPACK matrix (the offline host-side step)."""
        with _span("encode.bro_ell", "pipeline", slices=sl.num_slices,
                   sym_len=sym_len):
            return cls._from_sliced(sl, sym_len)

    @classmethod
    def _from_sliced(
        cls, sl: SlicedELLPACKMatrix, sym_len: int
    ) -> "BROELLMatrix":
        streams = []
        bit_allocs = []
        val_blocks = []
        lengths = sl.row_lengths
        for r0, r1, col_block, val_block in sl.iter_slices():
            l_i = col_block.shape[1]
            lens = lengths[r0:r1]
            valid = np.arange(l_i)[np.newaxis, :] < lens[:, np.newaxis]
            deltas = delta_encode_columns(col_block, valid)
            widths = column_bit_alloc(deltas, max_bits=sym_len)
            streams.append(pack_slice(deltas, widths, sym_len=sym_len))
            bit_allocs.append(widths)
            val_blocks.append(val_block.reshape(-1))
        stream = concat_slices(streams, sym_len=sym_len)
        vals = (
            np.concatenate(val_blocks)
            if val_blocks
            else np.zeros(0, dtype=VALUE_DTYPE)
        )
        return cls(stream, bit_allocs, vals, lengths, sl.h, sl.shape)

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, h: int = 256, sym_len: int = 32, **kwargs
    ) -> "BROELLMatrix":
        return cls.from_sliced(SlicedELLPACKMatrix.from_coo(coo, h=h), sym_len=sym_len)

    def with_uniform_width(self, bits: int) -> "BROELLMatrix":
        """Repack every slice with a fixed per-column bit width.

        This is the Section 4.2.1 experiment knob: on a dense matrix every
        delta is 1, so forcing the width to ``b`` simulates a compression
        ratio of ``32 / b`` without changing the compute. Raises
        :class:`~repro.errors.CompressionError` if any real delta does not
        fit in ``bits``.
        """
        streams = []
        bit_allocs = []
        for i in range(self.num_slices):
            h_i = int(self._edges[i + 1] - self._edges[i])
            deltas = unpack_slice(
                self._stream.slice_view(i), self._bit_allocs[i], h_i, self.sym_len
            )
            widths = np.full(deltas.shape[1], int(bits), dtype=np.int64)
            streams.append(pack_slice(deltas, widths, sym_len=self.sym_len))
            bit_allocs.append(widths)
        return BROELLMatrix(
            concat_slices(streams, sym_len=self.sym_len),
            bit_allocs,
            self._vals,
            self._row_lengths,
            self._h,
            self._shape,
        )

    def to_sliced(self) -> SlicedELLPACKMatrix:
        """Decompress back to Sliced-ELLPACK (testing / verification)."""
        col_parts = []
        for i in range(self.num_slices):
            cols, valid = self.decode_slice_cols(i)
            cols = np.where(valid, cols, 0)
            col_parts.append(cols.reshape(-1))
        col_idx = (
            np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=np.int64)
        )
        return SlicedELLPACKMatrix(
            col_idx, self._vals, self._row_lengths, self._num_col, self._h, self._shape
        )

    def to_coo(self) -> COOMatrix:
        return self.to_sliced().to_coo()

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "h": self._h, "sym_len": self.sym_len,
        }
        # The ragged per-slice bit_alloc arrays flatten into one buffer;
        # num_col holds the split points for the reverse transform.
        bit_alloc = (
            np.concatenate(self._bit_allocs)
            if self._bit_allocs
            else np.zeros(0, dtype=np.int64)
        )
        arrays = {
            "stream": self._stream.data,
            "slice_ptr": self._stream.slice_ptr,
            "bit_alloc": bit_alloc,
            "num_col": self._num_col,
            "vals": self._vals,
            "row_lengths": self._row_lengths,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "BROELLMatrix":
        stream = MultiplexedStream(
            arrays["stream"], arrays["slice_ptr"], int(meta["sym_len"])
        )
        num_col = np.asarray(arrays["num_col"], dtype=np.int64)
        splits = np.cumsum(num_col)[:-1]
        bit_allocs = np.split(np.asarray(arrays["bit_alloc"]), splits)
        return cls(
            stream, bit_allocs, arrays["vals"], arrays["row_lengths"],
            int(meta["h"]), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV: host-side decode then dense gather per slice."""
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        for i, (r0, r1, _ba, _sv, val_block) in enumerate(self.iter_slices()):
            if val_block.shape[1] == 0:
                continue
            cols, valid = self.decode_slice_cols(i)
            cols = np.where(valid, cols, 0)
            # One masked FMA per ELL column, accumulated sequentially —
            # the same order as Algorithm 1's device loop. A pairwise or
            # SIMD-blocked reduction (einsum) would make the summation
            # tree depend on the slice's padded width, so row results
            # would drift by ULPs between differently-padded slices (e.g.
            # the same row inside a row-sharded partition).
            prod = np.where(valid, val_block * x[cols], 0.0)
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[1]):
                acc += prod[:, c]
            y[r0:r1] = acc
        return y

    def device_bytes(self) -> Dict[str, int]:
        # bit_alloc entries fit in one byte each (widths <= 64) and live in
        # constant memory; num_col and the slice pointers are int32.
        aux = int(self._num_col.sum()) + 4 * (
            self._num_col.shape[0] + self._stream.slice_ptr.shape[0]
        )
        return {
            "index": int(self._stream.nbytes),
            "values": int(self._vals.nbytes),
            "aux": aux,
        }
