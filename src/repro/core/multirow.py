"""Multiple threads per row — the paper's second future-work item (§6).

"In future, other sources of performance improvement such as assigning
multiple threads per row ... will be investigated."

The clean way to get T threads per row without touching Algorithm 1 is a
*row-splitting transform*: every logical row is dealt round-robin into T
sub-rows (sub-row ``j`` takes the row's entries at positions ``j, j+T,
j+2T, ...``), the expanded matrix is stored as plain BRO-ELL, and the
kernel finishes with a small segmented sum folding each group of T
partial results. Column indices stay strictly increasing inside each
sub-row, so the delta/packing machinery applies unchanged; sub-row
deltas are sums of T consecutive original deltas (slightly wider codes —
the compression cost of the transform).

The win is occupancy: a matrix with too few rows to fill the device
(e40r5000 in Fig. 6) gets T× more threads. The ablation benchmark
``benchmarks/test_ablation_multirow.py`` quantifies both sides.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..bitstream.codec import COLUMN_DELTA
from ..errors import ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..registry import TunerProfile
from ..utils.validation import check_positive
from .bro_ell import BROELLMatrix

__all__ = ["split_rows", "MultiRowBROELL"]


def split_rows(coo: COOMatrix, t: int) -> COOMatrix:
    """Deal each row's entries round-robin into ``t`` sub-rows.

    Row ``r`` of the input becomes rows ``r*t .. r*t + t - 1`` of the
    output; entry ``p`` of the row goes to sub-row ``p mod t``. The
    product of the original matrix is recovered by summing each group of
    ``t`` consecutive output rows.
    """
    t = check_positive(t, "t")
    m, n = coo.shape
    if coo.nnz == 0:
        return COOMatrix(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0),
            (m * t, n),
        )
    lengths = coo.row_lengths()
    csr = CSRMatrix.from_coo(coo)
    pos = np.arange(coo.nnz, dtype=np.int64) - np.repeat(csr.indptr[:-1], lengths)
    rows = coo.row_idx.astype(np.int64) * t + pos % t
    return COOMatrix(rows, coo.col_idx, coo.vals, (m * t, n))


@register_format(
    default_kwargs={"threads_per_row": 2, "h": 256, "sym_len": 32},
    tuner=TunerProfile(candidate=False),
    codec=COLUMN_DELTA,
)
class MultiRowBROELL(SparseFormat):
    """BRO-ELL with ``t`` threads (sub-rows) per logical matrix row."""

    format_name = "bro_ell_mt"

    def __init__(self, inner: BROELLMatrix, t: int, shape: Tuple[int, int]):
        t = check_positive(t, "t")
        m, n = int(shape[0]), int(shape[1])
        if inner.shape != (m * t, n):
            raise ValidationError(
                f"inner matrix must be ({m * t}, {n}), got {inner.shape}"
            )
        self._inner = inner
        self._t = t
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def inner(self) -> BROELLMatrix:
        """The row-split BRO-ELL storage (``m * t`` sub-rows)."""
        return self._inner

    @property
    def threads_per_row(self) -> int:
        return self._t

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._inner.nnz

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        threads_per_row: int = 2,
        h: int = 256,
        sym_len: int = 32,
        **kwargs,
    ) -> "MultiRowBROELL":
        t = check_positive(threads_per_row, "threads_per_row")
        inner = BROELLMatrix.from_coo(split_rows(coo, t), h=h, sym_len=sym_len)
        return cls(inner, t, coo.shape)

    def fold(self, partial: np.ndarray) -> np.ndarray:
        """Sum each group of ``t`` sub-row results into the logical row."""
        if partial.shape != (self._shape[0] * self._t,):
            raise ValidationError("partial vector has the wrong length")
        return partial.reshape(self._shape[0], self._t).sum(axis=1)

    def to_coo(self) -> COOMatrix:
        sub = self._inner.to_coo()
        return COOMatrix(
            sub.row_idx.astype(np.int64) // self._t,
            sub.col_idx,
            sub.vals,
            self._shape,
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        inner_meta, inner_arrays = self._inner.to_state()
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "t": self._t, "inner": inner_meta,
        }
        arrays = {f"inner.{k}": v for k, v in inner_arrays.items()}
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "MultiRowBROELL":
        inner = BROELLMatrix.from_state(
            meta["inner"],
            {k[6:]: v for k, v in arrays.items() if k.startswith("inner.")},
        )
        return cls(inner, int(meta["t"]), tuple(meta["shape"]))

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        return self.fold(self._inner.spmv(x))

    def device_bytes(self) -> Dict[str, int]:
        return self._inner.device_bytes()
