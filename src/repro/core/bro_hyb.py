"""BRO-HYB: hybrid of BRO-ELL and BRO-COO (paper Section 3.3).

The matrix is partitioned with the *same* Bell–Garland heuristic as HYB
(paper: "dividing a sparse matrix into BRO-ELL and BRO-COO partitions with
the same algorithm as in [4, 5]"), so HYB vs BRO-HYB comparisons see
identical partitions; each part is then stored in its BRO variant.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..bitstream.codec import COLUMN_DELTA, LANE_DELTA
from ..errors import ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..formats.hyb import hyb_split_column, split_coo
from ..registry import TunerProfile
from ..types import VALUE_DTYPE
from .bro_coo import BROCOOMatrix
from .bro_ell import BROELLMatrix

__all__ = ["BROHYBMatrix"]


@register_format(
    default_kwargs={
        "k": None, "h": 256, "sym_len": 32,
        "interval_size": None, "warp_size": 32,
    },
    tuner=TunerProfile(sweep_h=True),
    codec=f"{COLUMN_DELTA}+{LANE_DELTA}",
)
class BROHYBMatrix(SparseFormat):
    """Sparse matrix stored as a BRO-ELL part plus a BRO-COO part."""

    format_name = "bro_hyb"

    def __init__(
        self,
        ell: BROELLMatrix,
        coo: BROCOOMatrix,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        if ell.shape != (m, n) or coo.shape != (m, n):
            raise ValidationError("BRO-HYB parts must share the logical shape")
        self._ell = ell
        self._coo = coo
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def ell(self) -> BROELLMatrix:
        """The BRO-ELL part."""
        return self._ell

    @property
    def coo(self) -> BROCOOMatrix:
        """The BRO-COO overflow part."""
        return self._coo

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._ell.nnz + self._coo.nnz

    @property
    def ell_fraction(self) -> float:
        """Fraction of non-zeros in the BRO-ELL part (Table 4's "% BRO-ELL")."""
        total = self.nnz
        return float(self._ell.nnz) / total if total else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        k: int | None = None,
        h: int = 256,
        sym_len: int = 32,
        interval_size: int | None = None,
        warp_size: int = 32,
        **kwargs,
    ) -> "BROHYBMatrix":
        """Build with the Bell–Garland split (or an explicit width ``k``)."""
        if k is None:
            k = hyb_split_column(coo.row_lengths())
        ell_coo, tail_coo = split_coo(coo, k)
        m, n = coo.shape
        empty = COOMatrix(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), coo.shape
        )
        ell = BROELLMatrix.from_coo(ell_coo if ell_coo is not None else empty,
                                    h=h, sym_len=sym_len)
        bro_coo = BROCOOMatrix.from_coo(
            tail_coo if tail_coo is not None else empty,
            interval_size=interval_size,
            warp_size=warp_size,
            sym_len=sym_len,
        )
        return cls(ell, bro_coo, coo.shape)

    def to_coo(self) -> COOMatrix:
        ell_coo = self._ell.to_coo()
        coo_coo = self._coo.to_coo()
        return COOMatrix(
            np.concatenate([ell_coo.row_idx, coo_coo.row_idx]),
            np.concatenate([ell_coo.col_idx, coo_coo.col_idx]),
            np.concatenate([ell_coo.vals, coo_coo.vals]),
            self._shape,
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        ell_meta, ell_arrays = self._ell.to_state()
        coo_meta, coo_arrays = self._coo.to_state()
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "ell": ell_meta, "coo": coo_meta,
        }
        arrays = {f"ell.{k}": v for k, v in ell_arrays.items()}
        arrays.update({f"coo.{k}": v for k, v in coo_arrays.items()})
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "BROHYBMatrix":
        ell = BROELLMatrix.from_state(
            meta["ell"],
            {k[4:]: v for k, v in arrays.items() if k.startswith("ell.")},
        )
        coo = BROCOOMatrix.from_state(
            meta["coo"],
            {k[4:]: v for k, v in arrays.items() if k.startswith("coo.")},
        )
        return cls(ell, coo, tuple(meta["shape"]))

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = self._ell.spmv(x) if self._ell.nnz else np.zeros(self._shape[0], VALUE_DTYPE)
        if self._coo.padded_nnz:
            y = y + self._coo.spmv(x)
        return y

    def device_bytes(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for part in (self._ell, self._coo):
            for key, nbytes in part.device_bytes().items():
                out[key] = out.get(key, 0) + int(nbytes)
        return out
