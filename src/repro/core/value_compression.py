"""Value-data compression — the paper's stated future work (Section 6).

"In future, other sources of performance improvement such as ... value
data compression will be investigated."

Many matrices carry few distinct values (pattern matrices, FEM stiffness
blocks assembled from identical elements, lattice-QCD couplings). This
module implements the GPU-compatible scheme that composes with BRO-ELL:

* per slice, build a dictionary of the distinct values;
* if the dictionary is small enough (``<= 2**max_bits`` entries), replace
  the ``(h_i, l_i)`` float64 block with bit-packed dictionary codes using
  the same multiplexed layout as the index stream — the decoder is the
  identical divergence-free load-decode loop plus one dictionary gather
  (served from shared/constant memory on a real GPU);
* otherwise the slice keeps raw values (a per-slice decision, so one
  incompressible slice cannot poison the whole matrix).

:class:`BROELLVCMatrix` extends BRO-ELL with this value channel and the
matching kernel lives in :mod:`repro.kernels.spmv_bro_ell_vc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..bitstream.codec import COLUMN_DELTA
from ..bitstream.multiplex import MultiplexedStream
from ..bitstream.packing import pack_slice, unpack_slice
from ..errors import ValidationError
from ..formats.base import register_format
from ..registry import TunerProfile
from ..formats.coo import COOMatrix
from ..formats.sliced_ellpack import SlicedELLPACKMatrix
from ..types import VALUE_DTYPE
from ..utils.bits import bit_width
from .bro_ell import BROELLMatrix

__all__ = ["compress_value_block", "decompress_value_block", "BROELLVCMatrix"]


@dataclass(frozen=True)
class CompressedValueSlice:
    """One slice's value channel: either a dictionary or raw values."""

    dictionary: np.ndarray | None  #: distinct values, or None if raw
    codes: np.ndarray | None  #: packed code stream (multiplexed), or None
    code_bits: int  #: bits per code (0 when raw)
    raw: np.ndarray | None  #: raw (h_i, l_i) values when not compressed

    @property
    def nbytes(self) -> int:
        """Device bytes of this slice's value storage."""
        if self.raw is not None:
            return int(self.raw.nbytes)
        assert self.dictionary is not None and self.codes is not None
        return int(self.dictionary.nbytes + self.codes.nbytes)


def compress_value_block(
    vals: np.ndarray, max_bits: int = 8, sym_len: int = 32
) -> CompressedValueSlice:
    """Compress one ``(h_i, l_i)`` value block with a dictionary, if it pays.

    Falls back to raw storage when the dictionary would need more than
    ``max_bits``-bit codes or would not actually shrink the slice.
    """
    vals = np.asarray(vals, dtype=VALUE_DTYPE)
    if vals.ndim != 2:
        raise ValidationError("value block must be 2-D")
    if vals.size == 0:
        return CompressedValueSlice(None, None, 0, vals)
    dictionary, codes = np.unique(vals, return_inverse=True)
    n_distinct = dictionary.shape[0]
    if n_distinct > (1 << max_bits):
        return CompressedValueSlice(None, None, 0, vals)
    bits = bit_width(max(n_distinct - 1, 0))
    h, L = vals.shape
    packed = pack_slice(
        codes.reshape(h, L), np.full(L, bits, dtype=np.int64), sym_len=sym_len
    )
    compressed_bytes = dictionary.nbytes + packed.nbytes
    if compressed_bytes >= vals.nbytes:
        return CompressedValueSlice(None, None, 0, vals)
    return CompressedValueSlice(dictionary, packed, bits, None)


def decompress_value_block(
    slice_: CompressedValueSlice, h: int, L: int, sym_len: int = 32
) -> np.ndarray:
    """Recover the ``(h, L)`` float64 value block."""
    if slice_.raw is not None:
        return slice_.raw
    assert slice_.dictionary is not None and slice_.codes is not None
    codes = unpack_slice(
        slice_.codes, np.full(L, slice_.code_bits, dtype=np.int64), h, sym_len
    )
    if codes.size and int(codes.max()) >= slice_.dictionary.shape[0]:
        raise ValidationError("value code out of dictionary range")
    return slice_.dictionary[codes]


@register_format(
    default_kwargs={"h": 256, "sym_len": 32, "max_bits": 8},
    tuner=TunerProfile(candidate=False),
    codec=COLUMN_DELTA,
)
class BROELLVCMatrix(BROELLMatrix):
    """BRO-ELL with the value channel dictionary-compressed per slice."""

    format_name = "bro_ell_vc"

    def __init__(self, *args, value_slices: Sequence[CompressedValueSlice] = (),
                 max_bits: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if len(value_slices) != self.num_slices:
            raise ValidationError(
                f"need {self.num_slices} value slices, got {len(value_slices)}"
            )
        self._value_slices = tuple(value_slices)
        self._max_bits = int(max_bits)

    @property
    def value_slices(self) -> Tuple[CompressedValueSlice, ...]:
        """Per-slice compressed value channels."""
        return self._value_slices

    @property
    def compressed_slices(self) -> int:
        """How many slices actually use a dictionary."""
        return sum(1 for s in self._value_slices if s.raw is None)

    # ------------------------------------------------------------------
    @classmethod
    def from_sliced(
        cls, sl: SlicedELLPACKMatrix, sym_len: int = 32, max_bits: int = 8
    ) -> "BROELLVCMatrix":
        base = BROELLMatrix.from_sliced(sl, sym_len=sym_len)
        value_slices = [
            compress_value_block(base.val_block(i), max_bits=max_bits,
                                 sym_len=sym_len)
            for i in range(base.num_slices)
        ]
        return cls(
            base.stream,
            base.bit_allocs,
            base._vals,
            base.row_lengths,
            base.h,
            base.shape,
            value_slices=value_slices,
            max_bits=max_bits,
        )

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, h: int = 256, sym_len: int = 32,
        max_bits: int = 8, **kwargs,
    ) -> "BROELLVCMatrix":
        return cls.from_sliced(
            SlicedELLPACKMatrix.from_coo(coo, h=h), sym_len=sym_len,
            max_bits=max_bits,
        )

    def decoded_val_block(self, i: int) -> np.ndarray:
        """Slice ``i``'s value block, decoded from its compressed channel."""
        h_i = int(self.slice_edges[i + 1] - self.slice_edges[i])
        L = int(self.num_col[i])
        return decompress_value_block(
            self._value_slices[i], h_i, L, self.sym_len
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta, arrays = super().to_state()
        meta["max_bits"] = self._max_bits
        channels: List[Dict[str, int | str]] = []
        for i, s in enumerate(self._value_slices):
            if s.raw is not None:
                channels.append({"kind": "raw", "code_bits": 0})
                arrays[f"vc{i}.raw"] = s.raw
            else:
                channels.append({"kind": "dict", "code_bits": s.code_bits})
                arrays[f"vc{i}.dict"] = s.dictionary
                arrays[f"vc{i}.codes"] = s.codes
        meta["value_slices"] = channels
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "BROELLVCMatrix":
        stream = MultiplexedStream(
            arrays["stream"], arrays["slice_ptr"], int(meta["sym_len"])
        )
        num_col = np.asarray(arrays["num_col"], dtype=np.int64)
        splits = np.cumsum(num_col)[:-1]
        bit_allocs = np.split(np.asarray(arrays["bit_alloc"]), splits)
        value_slices = []
        for i, channel in enumerate(meta["value_slices"]):
            if channel["kind"] == "raw":
                value_slices.append(
                    CompressedValueSlice(None, None, 0, arrays[f"vc{i}.raw"])
                )
            else:
                value_slices.append(
                    CompressedValueSlice(
                        arrays[f"vc{i}.dict"], arrays[f"vc{i}.codes"],
                        int(channel["code_bits"]), None,
                    )
                )
        return cls(
            stream, bit_allocs, arrays["vals"], arrays["row_lengths"],
            int(meta["h"]), tuple(meta["shape"]),
            value_slices=value_slices, max_bits=int(meta["max_bits"]),
        )

    def device_bytes(self) -> Dict[str, int]:
        base = super().device_bytes()
        base["values"] = int(sum(s.nbytes for s in self._value_slices))
        return base

    def value_space_savings(self) -> float:
        """``1 - compressed / raw`` for the value channel alone."""
        raw = self._vals.nbytes
        if raw == 0:
            return 0.0
        return 1.0 - sum(s.nbytes for s in self._value_slices) / raw
