"""Space-savings and compression-ratio accounting (paper Section 4.2.1).

Definitions from the paper:

* space savings: ``eta = 1 - C / O`` where ``C`` is the compressed size of
  the index data and ``O`` its original size;
* compression ratio: ``kappa = 1 / (1 - eta)``.

For the BRO formats the "original size" is the index storage of the
corresponding classical format built from the *same* matrix and the *same*
partition: ELLPACK for BRO-ELL (Table 3), COO row indices for BRO-COO, and
HYB for BRO-HYB (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from ..formats.base import SparseFormat
from ..formats.coo import COOMatrix
from ..formats.ellpack import ELLPACKMatrix
from ..formats.hyb import HYBMatrix
from .bro_coo import BROCOOMatrix
from .bro_ell import BROELLMatrix
from .bro_hyb import BROHYBMatrix

__all__ = [
    "CompressionReport",
    "space_savings",
    "space_savings_from_ratio",
    "compression_ratio",
    "index_compression_report",
]


def space_savings(original_bytes: int, compressed_bytes: int) -> float:
    """``eta = 1 - C / O`` (may be negative when compression loses)."""
    if original_bytes <= 0:
        raise ValidationError("original size must be positive")
    if compressed_bytes < 0:
        raise ValidationError("compressed size must be non-negative")
    return 1.0 - compressed_bytes / original_bytes


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """``kappa = O / C = 1 / (1 - eta)``."""
    if compressed_bytes <= 0:
        raise ValidationError("compressed size must be positive")
    if original_bytes <= 0:
        raise ValidationError("original size must be positive")
    return original_bytes / compressed_bytes


def space_savings_from_ratio(kappa: float) -> float:
    """Convert a compression ratio ``kappa`` to space savings ``eta``."""
    if kappa <= 0:
        raise ValidationError("compression ratio must be positive")
    return 1.0 - 1.0 / kappa


@dataclass(frozen=True)
class CompressionReport:
    """Index-data compression accounting for one matrix.

    Attributes
    ----------
    original_index_bytes:
        Index bytes of the classical baseline format.
    compressed_index_bytes:
        Index bytes of the BRO format (packed streams + uncompressed index
        components + auxiliary width tables).
    """

    matrix_name: str
    scheme: str
    original_index_bytes: int
    compressed_index_bytes: int

    @property
    def eta(self) -> float:
        """Space savings, Table 3 / Table 5's ``eta``."""
        return space_savings(self.original_index_bytes, self.compressed_index_bytes)

    @property
    def kappa(self) -> float:
        """Compression ratio."""
        return compression_ratio(self.original_index_bytes, self.compressed_index_bytes)


def _bro_index_bytes(fmt: SparseFormat) -> int:
    db = fmt.device_bytes()
    return int(db["index"] + db.get("aux", 0))


def index_compression_report(
    bro: SparseFormat, matrix_name: str = "matrix"
) -> CompressionReport:
    """Build a :class:`CompressionReport` for a BRO-format matrix.

    The baseline is reconstructed from the BRO matrix itself so the exact
    same entries (and for BRO-HYB the exact same partition) are compared.
    """
    if isinstance(bro, BROELLMatrix):
        baseline = ELLPACKMatrix.from_coo(bro.to_coo())
        original = baseline.device_bytes()["index"]
        scheme = "bro_ell"
    elif isinstance(bro, BROCOOMatrix):
        # BRO-COO compresses only the row-index array; the column indices
        # are identical on both sides, so compare row-index storage:
        # 4 bytes per (padded) entry against the packed stream.
        original = 4 * bro.padded_nnz
        compressed = bro.stream.nbytes + bro.bit_alloc.shape[0]
        return CompressionReport(matrix_name, "bro_coo", original, int(compressed))
    elif isinstance(bro, BROHYBMatrix):
        coo = bro.to_coo()
        baseline = HYBMatrix.from_coo(coo, k=bro.ell.num_col.max(initial=0))
        # Compare full index storage of HYB vs BRO-HYB under the same split.
        original = baseline.device_bytes()["index"]
        scheme = "bro_hyb"
    elif isinstance(bro, COOMatrix):
        raise ValidationError("pass a BRO-format matrix, not a classical one")
    else:
        raise ValidationError(f"unsupported format {type(bro).__name__}")
    return CompressionReport(matrix_name, scheme, int(original), _bro_index_bytes(bro))
