"""BRO-SELL: the BRO codec composed on SELL-C-σ.

The tentpole claim of the codec layer is that bit-representation
optimization composes with any sliced ELL-style skeleton. This module is
the proof: it applies the exact column-delta pipeline of
:class:`~repro.core.bro_ell.BROELLMatrix` to the *sorted* chunks of
:class:`~repro.formats.sell_c_sigma.SELLCSigmaMatrix`. The sort tightens
each chunk's width (less padding to encode), while delta packing shrinks
what remains — the two optimizations attack independent terms of the
index footprint, so they stack.

Container layout is BRO-ELL's (multiplexed stream, per-chunk
``bit_alloc``, flat value blocks) plus SELL-C-σ's ``row_ids``
permutation table; the kernel decodes a chunk exactly like a BRO-ELL
slice and then scatters the chunk's partial sums through ``row_ids``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

import numpy as np

from ..bitstream.codec import COLUMN_DELTA, BROCodec
from ..bitstream.multiplex import MultiplexedStream
from ..errors import ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..formats.sell_c_sigma import SELLCSigmaMatrix
from ..formats.sliced_ellpack import slice_bounds
from ..registry import TunerProfile
from ..telemetry.tracer import span as _span
from ..types import VALUE_DTYPE
from ..utils.validation import check_positive

__all__ = ["BROSELLMatrix"]


@register_format(
    default_kwargs={"c": 32, "sigma": 128, "sym_len": 32},
    tuner=TunerProfile(),
    codec=COLUMN_DELTA,
)
class BROSELLMatrix(SparseFormat):
    """SELL-C-σ chunks with BRO-compressed column-index streams."""

    format_name = "bro_sell"

    def __init__(
        self,
        stream: MultiplexedStream,
        bit_allocs: Sequence[np.ndarray],
        vals: np.ndarray,
        row_ids: np.ndarray,
        row_lengths: np.ndarray,
        c: int,
        sigma: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        c = check_positive(c, "c")
        sigma = check_positive(sigma, "sigma")
        self._edges = slice_bounds(m, min(c, m))
        s = self._edges.shape[0] - 1
        if stream.num_slices != s:
            raise ValidationError(
                f"stream holds {stream.num_slices} chunks, matrix needs {s}"
            )
        if len(bit_allocs) != s:
            raise ValidationError(f"need {s} bit_alloc arrays, got {len(bit_allocs)}")
        row_ids = np.asarray(row_ids, dtype=np.int64)
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if row_ids.shape != (m,) or not np.array_equal(
            np.sort(row_ids), np.arange(m)
        ):
            raise ValidationError("row_ids must be a permutation of range(m)")
        if row_lengths.shape != (m,):
            raise ValidationError("row_lengths must have one entry per row")
        self._bit_allocs = tuple(
            np.asarray(b, dtype=np.int64).reshape(-1) for b in bit_allocs
        )
        self._num_col = np.array(
            [b.shape[0] for b in self._bit_allocs], dtype=np.int64
        )
        heights = np.diff(self._edges)
        block_sizes = heights * self._num_col
        expected = int(block_sizes.sum())
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if vals.shape != (expected,):
            raise ValidationError(
                f"vals must hold {expected} entries (sum of chunk blocks), "
                f"got {vals.shape}"
            )
        self._val_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(block_sizes, out=self._val_ptr[1:])
        self._stream = stream
        self._codec = BROCodec(stream.sym_len)
        self._vals = vals
        self._row_ids = row_ids
        self._row_lengths = row_lengths
        self._c = c
        self._sigma = sigma
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def stream(self) -> MultiplexedStream:
        return self._stream

    @property
    def bit_allocs(self) -> Tuple[np.ndarray, ...]:
        """Per-chunk ``bit_alloc_i`` width arrays."""
        return self._bit_allocs

    @property
    def num_col(self) -> np.ndarray:
        """Per-chunk column counts (post-sort chunk widths)."""
        return self._num_col

    @property
    def row_ids(self) -> np.ndarray:
        """Original row stored at each permuted position (gather table)."""
        return self._row_ids

    @property
    def row_lengths(self) -> np.ndarray:
        """Real entries per row, in *original* row order."""
        return self._row_lengths

    @property
    def c(self) -> int:
        """Chunk height."""
        return self._c

    @property
    def sigma(self) -> int:
        """Sort scope of the underlying SELL-C-σ skeleton."""
        return self._sigma

    @property
    def sym_len(self) -> int:
        return self._stream.sym_len

    @property
    def codec(self) -> BROCodec:
        """The column-delta codec this container was encoded with."""
        return self._codec

    @property
    def num_chunks(self) -> int:
        return self._edges.shape[0] - 1

    @property
    def chunk_edges(self) -> np.ndarray:
        """Permuted-row boundaries of each chunk."""
        return self._edges

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    # ------------------------------------------------------------------
    def val_block(self, i: int) -> np.ndarray:
        """Chunk ``i``'s ``(h_i, l_i)`` value block (view)."""
        if not 0 <= i < self.num_chunks:
            raise ValidationError(f"chunk index {i} out of range")
        lo, hi = int(self._val_ptr[i]), int(self._val_ptr[i + 1])
        h_i = int(self._edges[i + 1] - self._edges[i])
        l_i = int(self._num_col[i])
        return self._vals[lo:hi].reshape(h_i, l_i)

    def iter_chunks(
        self,
    ) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(perm_start, perm_end, bit_alloc, stream_view, val_block)``."""
        for i in range(self.num_chunks):
            yield (
                int(self._edges[i]),
                int(self._edges[i + 1]),
                self._bit_allocs[i],
                self._stream.slice_view(i),
                self.val_block(i),
            )

    def decode_chunk_cols(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Host-side decode of chunk ``i``: ``(col_idx, valid)`` blocks."""
        h_i = int(self._edges[i + 1] - self._edges[i])
        return self._codec.decode_columns(
            self._stream.slice_view(i), self._bit_allocs[i], h_i
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_sell(
        cls, sell: SELLCSigmaMatrix, sym_len: int = 32
    ) -> "BROSELLMatrix":
        """Compress a SELL-C-σ matrix (the offline host-side step)."""
        with _span("encode.bro_sell", "pipeline", chunks=sell.num_chunks,
                   sym_len=sym_len):
            return cls._from_sell(sell, sym_len)

    @classmethod
    def _from_sell(
        cls, sell: SELLCSigmaMatrix, sym_len: int
    ) -> "BROSELLMatrix":
        codec = BROCodec(sym_len)
        streams = []
        bit_allocs = []
        val_blocks = []
        perm_lengths = sell.row_lengths[sell.row_ids]
        for r0, r1, col_block, val_block in sell.iter_chunks():
            valid = codec.valid_mask(perm_lengths[r0:r1], col_block.shape[1])
            syms, widths = codec.encode_columns(col_block, valid)
            streams.append(syms)
            bit_allocs.append(widths)
            val_blocks.append(val_block.reshape(-1))
        stream = codec.concat(streams)
        vals = (
            np.concatenate(val_blocks)
            if val_blocks
            else np.zeros(0, dtype=VALUE_DTYPE)
        )
        return cls(
            stream, bit_allocs, vals, sell.row_ids, sell.row_lengths,
            sell.c, sell.sigma, sell.shape,
        )

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        c: int = 32,
        sigma: int = 128,
        sym_len: int = 32,
        **kwargs,
    ) -> "BROSELLMatrix":
        return cls.from_sell(
            SELLCSigmaMatrix.from_coo(coo, c=c, sigma=sigma), sym_len=sym_len
        )

    def to_sell(self) -> SELLCSigmaMatrix:
        """Decompress back to SELL-C-σ (testing / verification)."""
        col_parts = []
        for i in range(self.num_chunks):
            cols, valid = self.decode_chunk_cols(i)
            cols = np.where(valid, cols, 0)
            col_parts.append(cols.reshape(-1))
        col_idx = (
            np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=np.int64)
        )
        return SELLCSigmaMatrix(
            col_idx, self._vals, self._row_ids, self._row_lengths,
            self._num_col, self._c, self._sigma, self._shape,
        )

    def to_coo(self) -> COOMatrix:
        return self.to_sell().to_coo()

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "c": self._c, "sigma": self._sigma,
            "sym_len": self.sym_len,
        }
        bit_alloc = (
            np.concatenate(self._bit_allocs)
            if self._bit_allocs
            else np.zeros(0, dtype=np.int64)
        )
        arrays = {
            "stream": self._stream.data,
            "slice_ptr": self._stream.slice_ptr,
            "bit_alloc": bit_alloc,
            "num_col": self._num_col,
            "vals": self._vals,
            "row_ids": self._row_ids,
            "row_lengths": self._row_lengths,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "BROSELLMatrix":
        stream = MultiplexedStream(
            arrays["stream"], arrays["slice_ptr"], int(meta["sym_len"])
        )
        num_col = np.asarray(arrays["num_col"], dtype=np.int64)
        splits = np.cumsum(num_col)[:-1]
        bit_allocs = np.split(np.asarray(arrays["bit_alloc"]), splits)
        return cls(
            stream, bit_allocs, arrays["vals"], arrays["row_ids"],
            arrays["row_lengths"], int(meta["c"]), int(meta["sigma"]),
            tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV: decode each chunk, scatter through ``row_ids``."""
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        for i, (r0, r1, _ba, _sv, val_block) in enumerate(self.iter_chunks()):
            if val_block.shape[1] == 0:
                continue
            cols, valid = self.decode_chunk_cols(i)
            cols = np.where(valid, cols, 0)
            # Masked column-sequential FMA like BRO-ELL, then the partial
            # sums land on their original rows through the permutation.
            prod = np.where(valid, val_block * x[cols], 0.0)
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for col in range(prod.shape[1]):
                acc += prod[:, col]
            y[self._row_ids[r0:r1]] = acc
        return y

    def device_bytes(self) -> Dict[str, int]:
        # Stream + the int32 permutation table are index traffic;
        # bit_alloc bytes plus int32 num_col / slice pointers are aux.
        aux = int(self._num_col.sum()) + 4 * (
            self._num_col.shape[0] + self._stream.slice_ptr.shape[0]
        )
        return {
            "index": int(self._stream.nbytes) + 4 * self._shape[0],
            "values": int(self._vals.nbytes),
            "aux": aux,
        }
