"""Bit-allocation computation for slices and intervals (paper Section 3.1).

For BRO-ELL every column ``j`` of a slice gets its own width
``b_j = max_i Gamma(delta_{i,j})`` so all threads of the slice consume the
same bit count per iteration (identical control flow — no warp divergence).
For BRO-COO a single width per interval packs every delta in the interval.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompressionError
from ..utils.bits import bit_width_array
from ..utils.validation import check_2d

__all__ = ["column_bit_alloc", "interval_bit_alloc"]


def column_bit_alloc(deltas: np.ndarray, max_bits: int = 32) -> np.ndarray:
    """Per-column widths of a slice: ``b_j = max_i Gamma(delta_{i,j})``.

    Returns an ``(L,)`` int64 array with entries in ``[1, max_bits]``.
    """
    deltas = check_2d(deltas, "deltas")
    if deltas.shape[0] == 0:
        raise CompressionError("a slice must contain at least one row")
    if deltas.shape[1] == 0:
        return np.zeros(0, dtype=np.int64)
    widths = bit_width_array(deltas).max(axis=0)
    if int(widths.max()) > max_bits:
        raise CompressionError(
            f"a delta requires {int(widths.max())} bits, exceeding the "
            f"symbol length {max_bits}"
        )
    return widths


def interval_bit_alloc(deltas: np.ndarray, max_bits: int = 32) -> int:
    """Single width of a BRO-COO interval: ``b = max Gamma(delta)``."""
    deltas = check_2d(deltas, "deltas")
    if deltas.size == 0:
        raise CompressionError("an interval must contain at least one entry")
    width = int(bit_width_array(deltas).max())
    if width > max_bits:
        raise CompressionError(
            f"a delta requires {width} bits, exceeding the symbol length {max_bits}"
        )
    return width
