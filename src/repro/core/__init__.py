"""The paper's contribution: BRO-ELL, BRO-COO and BRO-HYB storage schemes.

The pipeline (Fig. 1 / Fig. 2 of the paper):

1. :mod:`~repro.core.delta` — delta-encode index arrays (1-based, so every
   valid delta is >= 1 and 0 marks padding);
2. :mod:`~repro.core.slices` — per-slice/per-interval bit-allocation
   (``bit_alloc``) from the maximum delta width in each column;
3. :mod:`repro.bitstream` — bit packing and row-stream multiplexing;
4. :mod:`~repro.core.bro_ell` / :mod:`~repro.core.bro_coo` /
   :mod:`~repro.core.bro_hyb` — the storage classes;
5. :mod:`~repro.core.compression` — space savings / compression-ratio
   accounting (Tables 3–5).
"""

from .bro_coo import BROCOOMatrix
from .bro_ell import BROELLMatrix
from .bro_hyb import BROHYBMatrix
from .bro_sell import BROSELLMatrix
from .compression import (
    CompressionReport,
    compression_ratio,
    index_compression_report,
    space_savings,
    space_savings_from_ratio,
)
from .delta import (
    delta_decode_columns,
    delta_encode_columns,
    delta_decode_lanes,
    delta_encode_lanes,
)
from .slices import column_bit_alloc, interval_bit_alloc
from .multirow import MultiRowBROELL, split_rows
from .rowwise_codec import RowwiseBROELL
from .value_compression import BROELLVCMatrix

__all__ = [
    "BROELLMatrix",
    "BROCOOMatrix",
    "BROHYBMatrix",
    "BROSELLMatrix",
    "BROELLVCMatrix",
    "MultiRowBROELL",
    "RowwiseBROELL",
    "split_rows",
    "CompressionReport",
    "index_compression_report",
    "space_savings",
    "space_savings_from_ratio",
    "compression_ratio",
    "delta_encode_columns",
    "delta_decode_columns",
    "delta_encode_lanes",
    "delta_decode_lanes",
    "column_bit_alloc",
    "interval_bit_alloc",
]
