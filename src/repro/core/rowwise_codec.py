"""The design-choice strawman: per-ROW bit widths instead of per-column.

Section 3.1 allocates one bit width per *column* of a slice, shared by all
threads, explicitly so that "all the threads in a warp will either take
the first branch or the second branch" — no divergence — and so the
multiplexed stream stays coalesced. The obvious alternative a compression
person would reach for first is one width per *row* (each row's deltas
packed at that row's own max width). It loses on **both** axes:

* compression: a row's single wide first delta (the absolute start
  column) poisons every delta of that row, whereas per-column coding
  pays for it in one column only — measured in
  ``benchmarks/test_ablation_divergence.py``;
* execution: every thread consumes a different bit count per iteration,
  so lanes disagree on the need-new-symbol branch (warp divergence,
  both paths serialized) and sit at unrelated stream offsets
  (uncoalesced gathers).

:class:`RowwiseBROELL` implements the alternative faithfully so the
ablation benchmark can price the paper's design decision, and
:meth:`RowwiseBROELL.divergence_profile` quantifies the warp behaviour.
Per-entry varints (the CPU-scheme limit) compress better still, at the
cost of diverging on essentially every iteration; the benchmark computes
their size analytically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..bitstream.codec import COLUMN_DELTA
from ..bitstream.packing import pack_slice, unpack_slice
from ..errors import ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..formats.sliced_ellpack import SlicedELLPACKMatrix, slice_bounds
from ..types import VALUE_DTYPE, symbol_dtype
from ..utils.bits import bit_width_array
from ..utils.validation import check_positive
from .delta import delta_decode_columns, delta_encode_columns

__all__ = ["RowwiseBROELL"]


@register_format(default_kwargs={"h": 256, "sym_len": 32}, codec=COLUMN_DELTA)
class RowwiseBROELL(SparseFormat):
    """BRO-ELL variant with one bit width per row (the divergent strawman).

    Each row of a slice packs its deltas at that row's own width; the
    per-row streams are stored back-to-back (row-major) because the
    symbol-synchronous multiplexing of Fig. 1 requires equal per-iteration
    widths and is impossible here — exactly the point of the ablation.
    """

    format_name = "bro_ell_rowwise"

    def __init__(
        self,
        stream: np.ndarray,
        row_ptr: np.ndarray,
        row_bits: np.ndarray,
        vals: np.ndarray,
        row_lengths: np.ndarray,
        num_col: np.ndarray,
        h: int,
        sym_len: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        h = check_positive(h, "h")
        self._edges = slice_bounds(m, min(h, m))
        s = self._edges.shape[0] - 1
        stream = np.asarray(stream, dtype=symbol_dtype(sym_len))
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        row_bits = np.asarray(row_bits, dtype=np.int64)
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        num_col = np.asarray(num_col, dtype=np.int64)
        if row_ptr.shape != (m + 1,) or int(row_ptr[-1]) != stream.shape[0]:
            raise ValidationError("row_ptr must index the stream per row")
        if row_bits.shape != (m,) or row_lengths.shape != (m,):
            raise ValidationError("row_bits/row_lengths must be per-row")
        if num_col.shape != (s,):
            raise ValidationError(f"num_col must have {s} entries")
        heights = np.diff(self._edges)
        expected = int((heights * num_col).sum())
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if vals.shape != (expected,):
            raise ValidationError(f"vals must hold {expected} entries")
        self._val_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(heights * num_col, out=self._val_ptr[1:])
        self._stream = stream
        self._row_ptr = row_ptr
        self._row_bits = row_bits
        self._vals = vals
        self._row_lengths = row_lengths
        self._num_col = num_col
        self._h = h
        self._sym_len = int(sym_len)
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def row_bits(self) -> np.ndarray:
        """Per-row delta bit width (the strawman's extra freedom)."""
        return self._row_bits

    @property
    def num_col(self) -> np.ndarray:
        return self._num_col

    @property
    def h(self) -> int:
        return self._h

    @property
    def sym_len(self) -> int:
        return self._sym_len

    @property
    def num_slices(self) -> int:
        return self._edges.shape[0] - 1

    @property
    def slice_edges(self) -> np.ndarray:
        return self._edges

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    def val_block(self, i: int) -> np.ndarray:
        lo, hi = int(self._val_ptr[i]), int(self._val_ptr[i + 1])
        h_i = int(self._edges[i + 1] - self._edges[i])
        return self._vals[lo:hi].reshape(h_i, int(self._num_col[i]))

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, coo: COOMatrix, h: int = 256, sym_len: int = 32, **kwargs
    ) -> "RowwiseBROELL":
        sl = SlicedELLPACKMatrix.from_coo(coo, h=h)
        m = coo.shape[0]
        lengths = sl.row_lengths
        streams: List[np.ndarray] = []
        row_ptr = np.zeros(m + 1, dtype=np.int64)
        row_bits = np.zeros(m, dtype=np.int64)
        val_blocks = []
        for r0, r1, col_block, val_block in sl.iter_slices():
            l_i = col_block.shape[1]
            lens = lengths[r0:r1]
            valid = np.arange(l_i)[np.newaxis, :] < lens[:, np.newaxis]
            deltas = delta_encode_columns(col_block, valid)
            widths = (
                np.where(valid, bit_width_array(deltas), 1).max(axis=1)
                if l_i
                else np.ones(r1 - r0, dtype=np.int64)
            )
            for local, row in enumerate(range(r0, r1)):
                b = int(max(widths[local], 1))
                row_bits[row] = b
                packed = pack_slice(
                    deltas[local : local + 1],
                    np.full(l_i, b, dtype=np.int64),
                    sym_len=sym_len,
                ) if l_i else np.zeros(0, dtype=symbol_dtype(sym_len))
                streams.append(packed)
                row_ptr[row + 1] = row_ptr[row] + packed.shape[0]
            val_blocks.append(val_block.reshape(-1))
        stream = (
            np.concatenate(streams) if streams
            else np.zeros(0, dtype=symbol_dtype(sym_len))
        )
        vals = (
            np.concatenate(val_blocks) if val_blocks
            else np.zeros(0, dtype=VALUE_DTYPE)
        )
        return cls(stream, row_ptr, row_bits, vals, lengths, sl.num_col,
                   h, sym_len, coo.shape)

    def decode_row_deltas(self, row: int, l_i: int) -> np.ndarray:
        lo, hi = int(self._row_ptr[row]), int(self._row_ptr[row + 1])
        if l_i == 0:
            return np.zeros(0, dtype=np.int64)
        widths = np.full(l_i, int(self._row_bits[row]), dtype=np.int64)
        return unpack_slice(self._stream[lo:hi], widths, 1, self._sym_len)[0]

    def to_coo(self) -> COOMatrix:
        rows_out, cols_out, vals_out = [], [], []
        for i in range(self.num_slices):
            r0, r1 = int(self._edges[i]), int(self._edges[i + 1])
            l_i = int(self._num_col[i])
            vb = self.val_block(i)
            for local, row in enumerate(range(r0, r1)):
                deltas = self.decode_row_deltas(row, l_i)
                cols, valid = delta_decode_columns(deltas[np.newaxis, :])
                k = valid[0]
                rows_out.append(np.full(int(k.sum()), row, dtype=np.int64))
                cols_out.append(cols[0][k])
                vals_out.append(vb[local][k])
        if rows_out:
            return COOMatrix(
                np.concatenate(rows_out), np.concatenate(cols_out),
                np.concatenate(vals_out), self._shape,
            )
        return COOMatrix(np.zeros(0, np.int64), np.zeros(0, np.int64),
                         np.zeros(0), self._shape)

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "h": self._h, "sym_len": self._sym_len,
        }
        arrays = {
            "stream": self._stream,
            "row_ptr": self._row_ptr,
            "row_bits": self._row_bits,
            "vals": self._vals,
            "row_lengths": self._row_lengths,
            "num_col": self._num_col,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "RowwiseBROELL":
        return cls(
            arrays["stream"], arrays["row_ptr"], arrays["row_bits"],
            arrays["vals"], arrays["row_lengths"], arrays["num_col"],
            int(meta["h"]), int(meta["sym_len"]), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        coo = self.to_coo()
        return coo.spmv(x)

    def device_bytes(self) -> Dict[str, int]:
        # Per-row width table (1 B each) + per-row pointers (int32).
        return {
            "index": int(self._stream.nbytes),
            "values": int(self._vals.nbytes),
            "aux": int(self._shape[0] * (1 + 4) + 4 * self._num_col.shape[0]),
        }

    # ------------------------------------------------------------------
    def divergence_profile(self, warp_size: int = 32) -> Dict[str, float]:
        """Quantify the warp behaviour the paper's design avoids.

        Returns per-iteration statistics over all (warp, iteration) pairs:

        * ``divergent_fraction`` — fraction where the warp's lanes disagree
          on the load-new-symbol branch (both paths execute, serialized);
        * ``mean_distinct_offsets`` — distinct stream words the warp's
          lanes need per load iteration (1.0 would be coalesced; the
          BRO-ELL multiplexed layout achieves warp_size lanes per word
          group, this layout approaches one word per lane).
        """
        divergent = 0
        total = 0
        distinct_sum = 0
        load_iters = 0
        for i in range(self.num_slices):
            r0, r1 = int(self._edges[i]), int(self._edges[i + 1])
            l_i = int(self._num_col[i])
            if l_i == 0:
                continue
            for w0 in range(r0, r1, warp_size):
                w1 = min(w0 + warp_size, r1)
                bits = self._row_bits[w0:w1]
                # Lane state: bit cursor within the row stream.
                consumed = np.zeros(w1 - w0, dtype=np.int64)
                for c in range(l_i):
                    before = consumed // self._sym_len
                    consumed = consumed + bits
                    after = (consumed - 1) // self._sym_len
                    # A lane loads on its first iteration and whenever its
                    # bit cursor crosses a symbol boundary.
                    needs = (c == 0) | (after != before)
                    total += 1
                    if 0 < int(needs.sum()) < needs.shape[0]:
                        divergent += 1
                    if needs.any():
                        load_iters += 1
                        words = self._row_ptr[np.arange(w0, w1)[needs]] + after[needs]
                        distinct_sum += int(np.unique(words).shape[0])
        return {
            "divergent_fraction": divergent / total if total else 0.0,
            "mean_distinct_offsets": distinct_sum / load_iters if load_iters else 0.0,
        }
