"""Delta encoding of index data (paper Section 3.1, Fig. 1 / Fig. 2).

Two variants are needed:

* **Column deltas** for BRO-ELL: within each matrix row of an ELLPACK
  block, consecutive column indices are strictly increasing, so with the
  paper's 1-based convention (``c_{i,-1} = 0``) every valid delta is
  positive and **0 can mark padding** (Algorithm 1 line 17 tests
  ``decoded != invalid``).

* **Lane deltas** for BRO-COO: each warp lane walks a strided sequence of
  COO *row* indices, which are non-decreasing, so deltas are >= 0 and **0 is
  a valid delta** (same row continues); padding is handled by zero values
  instead.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import CompressionError
from ..utils.validation import check_2d

__all__ = [
    "delta_encode_columns",
    "delta_decode_columns",
    "delta_encode_lanes",
    "delta_decode_lanes",
]


def delta_encode_columns(col_idx: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Delta-encode an ELLPACK column-index block.

    Parameters
    ----------
    col_idx:
        ``(h, L)`` 0-based column indices; padding entries are ignored.
    valid:
        ``(h, L)`` boolean mask of real entries. Rows must be left-packed
        (no valid entry to the right of an invalid one).

    Returns
    -------
    numpy.ndarray
        ``(h, L)`` int64 deltas of the 1-based indices; every valid delta is
        >= 1 and every padding position is exactly 0.
    """
    col_idx = check_2d(col_idx, "col_idx").astype(np.int64, copy=False)
    valid = check_2d(valid, "valid").astype(bool, copy=False)
    if col_idx.shape != valid.shape:
        raise CompressionError(
            f"col_idx shape {col_idx.shape} != valid shape {valid.shape}"
        )
    if valid.shape[1] > 1 and np.any(valid[:, 1:] & ~valid[:, :-1]):
        raise CompressionError("rows must be left-packed (padding only on the right)")

    ones = col_idx + 1  # 1-based, as in the paper's example
    deltas = np.zeros_like(ones)
    if ones.shape[1]:
        deltas[:, 0] = ones[:, 0]  # c_{i,-1} = 0
        deltas[:, 1:] = ones[:, 1:] - ones[:, :-1]
    deltas[~valid] = 0
    if np.any((deltas <= 0) & valid):
        raise CompressionError(
            "column indices must strictly increase within each row "
            "(a non-positive delta appeared on a valid entry)"
        )
    return deltas


def delta_decode_columns(deltas: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Invert :func:`delta_encode_columns`.

    Returns ``(col_idx, valid)`` where ``col_idx`` is 0-based (padding
    positions hold arbitrary values) and ``valid`` is ``deltas != 0``.
    """
    deltas = check_2d(deltas, "deltas").astype(np.int64, copy=False)
    valid = deltas != 0
    # Padding deltas are 0, so a running prefix sum is exact: the column
    # index simply stops advancing after the row's last valid entry —
    # precisely what Algorithm 1 line 18 computes on the GPU.
    col_idx = np.cumsum(deltas, axis=1) - 1
    return col_idx, valid


def delta_encode_lanes(rows_2d: np.ndarray) -> np.ndarray:
    """Delta-encode a BRO-COO interval's 2-D row-index array along lanes.

    ``rows_2d`` is the ``(w, L)`` arrangement of a sorted COO row-index
    interval (lane ``i`` holds entries ``i, i + w, i + 2w, ...``), 0-based.
    Deltas use the paper's ``r_{i,-1} = 0`` convention on 1-based indices,
    so the first delta of a lane is its absolute 1-based row index.
    """
    rows_2d = check_2d(rows_2d, "rows_2d").astype(np.int64, copy=False)
    ones = rows_2d + 1
    deltas = np.zeros_like(ones)
    if ones.shape[1]:
        deltas[:, 0] = ones[:, 0]
        deltas[:, 1:] = ones[:, 1:] - ones[:, :-1]
    if np.any(deltas < 0):
        raise CompressionError("row indices must be non-decreasing along each lane")
    return deltas


def delta_decode_lanes(deltas: np.ndarray) -> np.ndarray:
    """Invert :func:`delta_encode_lanes`, returning 0-based row indices."""
    deltas = check_2d(deltas, "deltas").astype(np.int64, copy=False)
    return np.cumsum(deltas, axis=1) - 1
