"""Micro-batching: coalesce concurrent single-vector requests into one
multi-RHS kernel call.

The paper's economics — pay one expensive encode, amortize it over many
fast multiplications — extend to the *per-call* level: a prepared plan
replaying ``run_spmm`` over ``k`` stacked vectors costs far less than
``k`` separate ``run_spmv`` calls, because the gather/validity tables
are traversed once per batch instead of once per vector. The
:class:`MicroBatcher` converts concurrent service traffic into exactly
that shape.

Semantics (pinned by the serve test suite):

* The **first** request for a batch key opens a window; the batch
  flushes when ``window_s`` elapses or the batch reaches ``max_batch``
  items, whichever happens first. Later arrivals join the open window
  but never extend it — worst-case added latency is one window.
* Keys never mix: a batch holds requests for one ``(matrix, policy)``
  key only, so coalescing can never change *what* executes, only how
  many right-hand sides one call carries.
* ``window_s == 0`` still batches: the flush is scheduled as an
  immediate callback, so requests arriving in the same event-loop
  iteration coalesce, and an idle server adds no latency.
* Flush order is FIFO per key; items are delivered to the flush
  callback in arrival order, so response attribution is positional.

The batcher is transport-agnostic: it holds opaque items and calls an
async ``flush(key, items)`` callback; execution, timing and future
resolution belong to the owner (:class:`~repro.serve.server.ServerCore`).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, List, Optional

__all__ = ["MicroBatcher"]

FlushFn = Callable[[Hashable, List[Any]], Awaitable[None]]


class _Batch:
    __slots__ = ("items", "timer")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Window/size-bounded coalescer over an asyncio event loop."""

    def __init__(
        self,
        flush: FlushFn,
        *,
        window_s: float = 0.002,
        max_batch: int = 32,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush_cb = flush
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._pending: Dict[Hashable, _Batch] = {}
        self._tasks: "set[asyncio.Task]" = set()
        #: lifetime totals for occupancy accounting
        self.batches_flushed = 0
        self.items_flushed = 0

    # -- intake ---------------------------------------------------------
    def submit(self, key: Hashable, item: Any) -> None:
        """Add one item to the open batch for ``key`` (opening one if
        needed). Must be called from the event-loop thread."""
        batch = self._pending.get(key)
        if batch is None:
            batch = self._pending[key] = _Batch()
            loop = asyncio.get_running_loop()
            if self.window_s > 0:
                batch.timer = loop.call_later(
                    self.window_s, self._flush_key, key
                )
            else:
                # Zero window: flush on the next loop iteration so other
                # already-runnable submitters still coalesce.
                batch.timer = loop.call_later(0, self._flush_key, key)
        batch.items.append(item)
        if len(batch.items) >= self.max_batch:
            self._flush_key(key)

    # -- flushing -------------------------------------------------------
    def _flush_key(self, key: Hashable) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:  # already flushed by the size bound
            return
        if batch.timer is not None:
            batch.timer.cancel()
        self.batches_flushed += 1
        self.items_flushed += len(batch.items)
        task = asyncio.get_running_loop().create_task(
            self._flush_cb(key, batch.items)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def flush_all(self) -> None:
        """Force every open window closed now (shutdown/drain path)."""
        for key in list(self._pending):
            self._flush_key(key)

    async def join(self) -> None:
        """Wait for every scheduled flush task to complete."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # -- introspection --------------------------------------------------
    @property
    def pending_items(self) -> int:
        return sum(len(b.items) for b in self._pending.values())

    @property
    def mean_occupancy(self) -> float:
        """Lifetime mean vectors-per-flushed-batch (0.0 before traffic)."""
        if self.batches_flushed == 0:
            return 0.0
        return self.items_flushed / self.batches_flushed
