"""SpMV-as-a-service: the asyncio serving core and its NDJSON front end.

Two layers, deliberately separable:

* :class:`ServerCore` — transport-free serving machinery: admission
  control over a bounded in-flight budget, the
  :class:`~repro.serve.batcher.MicroBatcher`, a thread-pool executor the
  (GIL-releasing) kernel calls run on, the shared
  :class:`~repro.serve.pool.MatrixPool`, and a private
  :class:`~repro.telemetry.metrics.MetricsRegistry` accumulating
  per-tenant counters and latency histograms. ``await core.submit(req)``
  is the whole request path; benchmarks and tests drive it directly.
* :class:`SpMVServer` — a newline-delimited-JSON TCP protocol on top:
  one frame per line, ``op``-keyed (``spmv``, ``ping``, ``list``,
  ``stats``, ``metrics``, ``shutdown``), with every ``spmv`` line
  handled in its own task so a single pipelining connection still
  micro-batches.

The request lifecycle::

    admission ──rejected──────────────► SpMVResponse(status="rejected")
        │ admitted (inflight < max_queue)
        ▼
    micro-batcher (same matrix+policy coalesce, window/max_batch bound)
        ▼
    executor thread: run_spmv / run_spmm under the ExecutionPolicy
        ▼
    per-request SpMVResponse (y column j, shared batch_size/execute_ms)

Graceful shutdown (:meth:`ServerCore.shutdown`) closes admission
(late requests are *rejected*, never dropped), force-flushes open batch
windows, waits for in-flight work up to ``drain_timeout_s``, then
releases the executor and explicitly calls
:func:`repro.exec.workers.shutdown_pools` so process-backend worker
pools never outlive the service.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import AdmissionError, ReproError, ValidationError
from ..exec.policy import ExecutionPolicy
from ..gpu.device import get_device
from ..kernels.base import SpMVResult
from ..kernels.dispatch import run_spmm, run_spmv
from ..telemetry.metrics import LATENCY_BUCKETS, MetricsRegistry
from .api import (
    ServerConfig,
    SpMVRequest,
    SpMVResponse,
    apply_policy_overrides,
    policy_key,
)
from .batcher import MicroBatcher
from .pool import MatrixPool

__all__ = ["ServerCore", "SpMVServer", "serve"]

#: Micro-batch occupancy histogram bounds (vectors per kernel call).
OCCUPANCY_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass
class _Waiter:
    """One admitted single-vector request parked in a batch window."""

    request: SpMVRequest
    future: "asyncio.Future[SpMVResponse]"
    admitted_at: float


class ServerCore:
    """Transport-free serving engine: admission → batcher → executor."""

    def __init__(self, pool: MatrixPool, config: Optional[ServerConfig] = None):
        self.pool = pool
        self.config = config if config is not None else ServerConfig()
        self.device = get_device(self.config.device)
        self.metrics = MetricsRegistry()
        base = self.config.resolved_policy()
        if base.plan_cache is None and base.engine != "reference":
            base = base.with_(plan_cache=pool.plan_cache)
        self._base_policy = base
        self._batcher = MicroBatcher(
            self._flush,
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        self._inflight = 0
        self._accepting = True
        self._closed = False
        self._drained: Optional[asyncio.Event] = None
        self.started_at = time.time()

    # -- policy ---------------------------------------------------------
    def _policy_for(self, overrides: Optional[Dict[str, Any]]) -> ExecutionPolicy:
        return apply_policy_overrides(self._base_policy, overrides)

    # -- admission ------------------------------------------------------
    def _admit(self, request: SpMVRequest) -> Optional[SpMVResponse]:
        """Admission control: a rejected response, or ``None`` if admitted.

        Rejection is always an in-band typed response (the wire analogue
        of HTTP 429), so a client under backpressure sees *why* instead
        of a hung or dropped connection.
        """
        if not self._accepting:
            exc = AdmissionError(
                "server is draining for shutdown; request not admitted",
                queue_depth=self._inflight,
                max_queue=self.config.max_queue,
            )
            return self._reject(request, exc)
        if self._inflight >= self.config.max_queue:
            exc = AdmissionError(
                f"request queue full ({self._inflight}/"
                f"{self.config.max_queue} in flight); retry with backoff",
                queue_depth=self._inflight,
                max_queue=self.config.max_queue,
            )
            return self._reject(request, exc)
        # Validate against the pool *before* the request can join (and
        # poison) a shared batch window.
        try:
            matrix = self.pool.get(request.matrix)
            policy_key(request.policy)
        except ReproError as exc:
            return SpMVResponse.failure(request, exc)
        if request.x.shape[0] != matrix.shape[1]:
            return SpMVResponse.failure(
                request,
                ValidationError(
                    f"x has {request.x.shape[0]} rows, matrix "
                    f"{request.matrix!r} needs {matrix.shape[1]}"
                ),
            )
        return None

    def _reject(self, request: SpMVRequest, exc: AdmissionError) -> SpMVResponse:
        self.metrics.counter(
            "serve.admission_rejections", {"tenant": request.tenant}
        ).inc()
        return self._finish(
            request, SpMVResponse.failure(request, exc, status="rejected"), 0.0
        )

    def _finish(
        self, request: SpMVRequest, response: SpMVResponse, started: float
    ) -> SpMVResponse:
        """Per-tenant accounting applied to every response exactly once."""
        self.metrics.counter(
            "serve.requests",
            {"tenant": request.tenant, "status": response.status},
        ).inc()
        if started:
            self.metrics.histogram(
                "serve.request_latency_seconds",
                {"tenant": request.tenant},
                buckets=LATENCY_BUCKETS,
            ).observe(time.perf_counter() - started)
        return response

    # -- the request path -----------------------------------------------
    async def submit(self, request: SpMVRequest) -> SpMVResponse:
        """Serve one request end to end; never raises for request-shaped
        failures — errors come back as typed responses."""
        started = time.perf_counter()
        early = self._admit(request)
        if early is not None:
            return (
                early if early.rejected
                else self._finish(request, early, started)
            )
        self._inflight += 1
        self.metrics.gauge("serve.queue_depth").set(self._inflight)
        try:
            if request.is_batch:
                response = await self._execute_direct(request, started)
            else:
                loop = asyncio.get_running_loop()
                future: "asyncio.Future[SpMVResponse]" = loop.create_future()
                key = (request.matrix, policy_key(request.policy))
                self._batcher.submit(key, _Waiter(request, future, started))
                response = await future
            return self._finish(request, response, started)
        finally:
            self._inflight -= 1
            self.metrics.gauge("serve.queue_depth").set(self._inflight)
            if self._inflight == 0 and self._drained is not None:
                self._drained.set()

    async def _execute_direct(
        self, request: SpMVRequest, started: float
    ) -> SpMVResponse:
        """An explicit (n, k) batch: one run_spmm, no coalescing."""
        loop = asyncio.get_running_loop()
        queue_ms = 1e3 * (time.perf_counter() - started)
        t0 = time.perf_counter()
        try:
            policy = self._policy_for(request.policy)
            matrix = self.pool.get(request.matrix)
            result = await loop.run_in_executor(
                self._executor, self._run_spmm, matrix, request.x, policy
            )
        except Exception as exc:  # noqa: BLE001 - typed into the response
            return SpMVResponse.failure(request, exc, queue_ms=queue_ms)
        execute_ms = 1e3 * (time.perf_counter() - t0)
        self._record_batch(request.n_vectors, coalesced=False)
        return SpMVResponse.success(
            request,
            result.y,
            format=matrix.format_name,
            batch_size=request.n_vectors,
            queue_ms=queue_ms,
            execute_ms=execute_ms,
            meta=self._result_meta(result),
        )

    def _run_spmm(
        self, matrix: Any, X: np.ndarray, policy: ExecutionPolicy
    ) -> SpMVResult:
        return run_spmm(matrix, X, self.device, policy=policy)

    def _run_batch(
        self, matrix: Any, xs: List[np.ndarray], policy: ExecutionPolicy
    ) -> SpMVResult:
        """Executor-thread body of one coalesced batch."""
        if len(xs) == 1:
            return run_spmv(matrix, xs[0], self.device, policy=policy)
        X = np.ascontiguousarray(np.stack(xs, axis=1))
        return run_spmm(matrix, X, self.device, policy=policy)

    async def _flush(self, key: Hashable, waiters: List[Any]) -> None:
        """Batch flush: one kernel call, one response per waiter."""
        matrix_name, pkey = key
        loop = asyncio.get_running_loop()
        flushed_at = time.perf_counter()
        queue_ms = {
            w.request.request_id: 1e3 * (flushed_at - w.admitted_at)
            for w in waiters
        }
        try:
            matrix = self.pool.get(matrix_name)
            policy = self._policy_for(dict(pkey) if pkey else None)
            xs = [w.request.x for w in waiters]
            t0 = time.perf_counter()
            result = await loop.run_in_executor(
                self._executor, self._run_batch, matrix, xs, policy
            )
            execute_ms = 1e3 * (time.perf_counter() - t0)
        except Exception as exc:  # noqa: BLE001 - typed into responses
            for w in waiters:
                if not w.future.done():
                    w.future.set_result(
                        SpMVResponse.failure(
                            w.request, exc,
                            queue_ms=queue_ms[w.request.request_id],
                        )
                    )
            return
        self._record_batch(len(waiters), coalesced=True)
        meta = self._result_meta(result)
        k = len(waiters)
        for j, w in enumerate(waiters):
            if w.future.done():  # client went away mid-batch
                continue
            y = result.y if k == 1 else np.ascontiguousarray(result.y[:, j])
            w.future.set_result(
                SpMVResponse.success(
                    w.request,
                    y,
                    format=matrix.format_name,
                    batch_size=k,
                    queue_ms=queue_ms[w.request.request_id],
                    execute_ms=execute_ms,
                    meta=meta,
                )
            )

    def _record_batch(self, size: int, *, coalesced: bool) -> None:
        self.metrics.counter("serve.batches").inc()
        self.metrics.counter("serve.batched_vectors").inc(size)
        self.metrics.histogram(
            "serve.batch_occupancy", buckets=OCCUPANCY_BUCKETS
        ).observe(float(size))
        if coalesced and size > 1:
            self.metrics.counter("serve.coalesced_batches").inc()

    @staticmethod
    def _result_meta(result: SpMVResult) -> Dict[str, Any]:
        timing = result.timing
        return {
            "device": result.device.name,
            "model_time_us": timing.time * 1e6,
            "model_gflops": timing.gflops,
            "fallback_used": bool(result.fallback_used),
        }

    # -- introspection --------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._inflight

    @property
    def accepting(self) -> bool:
        return self._accepting

    def batch_occupancy(self) -> float:
        """Lifetime mean vectors per flushed micro-batch."""
        return self._batcher.mean_occupancy

    def stats(self) -> Dict[str, Any]:
        """JSON-able operational snapshot (the ``stats`` op payload)."""
        return {
            "uptime_s": time.time() - self.started_at,
            "accepting": self._accepting,
            "queue_depth": self._inflight,
            "max_queue": self.config.max_queue,
            "batches": self._batcher.batches_flushed,
            "batched_vectors": self._batcher.items_flushed,
            "batch_occupancy": self.batch_occupancy(),
            "pool": self.pool.describe(),
            "plan_cache": self.pool.plan_cache.stats(),
            "config": self.config.describe(),
        }

    def prometheus(self) -> str:
        """The metrics registry in Prometheus exposition format."""
        from ..telemetry.exporters import prometheus_text

        return prometheus_text(self.metrics.snapshot())

    # -- lifecycle ------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: close admission, flush windows, wait for
        in-flight work, release the executor and the process pools."""
        if self._closed:
            return
        self._accepting = False
        self._drained = asyncio.Event()
        if self._inflight == 0:
            self._drained.set()
        self._batcher.flush_all()
        try:
            await asyncio.wait_for(
                self._drained.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self.metrics.counter("serve.drain_timeouts").inc()
        await self._batcher.join()
        self._closed = True
        self._executor.shutdown(wait=True)
        # The atexit hook would catch these eventually; a graceful stop
        # must not leave worker processes running until then.
        from ..exec.workers import shutdown_pools

        shutdown_pools()


# ---------------------------------------------------------------------------
# NDJSON TCP front end
# ---------------------------------------------------------------------------


class SpMVServer:
    """Newline-delimited JSON protocol over TCP around a ServerCore.

    One frame per line; every frame carries an ``op``:

    ========== =====================================================
    ``spmv``    an :class:`SpMVRequest` wire frame → SpMVResponse frame
    ``ping``    liveness → ``{"ok": true, "op": "ping"}``
    ``list``    pooled matrices → ``{"matrices": [...]}``
    ``stats``   operational snapshot → ``{"stats": {...}}``
    ``metrics`` Prometheus text → ``{"prometheus": "..."}``
    ``shutdown`` graceful drain + server stop (ack first)
    ========== =====================================================

    ``spmv`` frames are handled each in their own task, so a single
    connection pipelining N requests gets the same micro-batching as N
    concurrent connections; responses carry the request ``id`` and may
    arrive out of order.
    """

    def __init__(self, pool: MatrixPool, config: Optional[ServerConfig] = None):
        self.config = config if config is not None else ServerConfig()
        self.core = ServerCore(pool, self.config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            raise ValidationError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> "SpMVServer":
        if self._server is not None:
            raise ValidationError("server is already started")
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        return self

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` frame) fires, then
        drain gracefully."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    def stop(self) -> None:
        """Request a graceful stop (safe from any task on the loop)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.core.shutdown()
        for task in list(self._conn_tasks):
            task.cancel()

    # -- protocol -------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        spmv_tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer, write_lock,
                        self._error_frame(
                            None,
                            f"frame exceeds max_line_bytes="
                            f"{self.config.max_line_bytes}",
                        ),
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    frame = json.loads(text)
                except json.JSONDecodeError as exc:
                    await self._send(
                        writer, write_lock,
                        self._error_frame(None, f"malformed JSON: {exc}"),
                    )
                    continue
                stop_reading = await self._dispatch(
                    frame, writer, write_lock, spmv_tasks
                )
                if stop_reading:
                    break
            if spmv_tasks:
                await asyncio.gather(*spmv_tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished; in-flight batches resolve without it
        finally:
            for t in spmv_tasks:
                if not t.done():
                    t.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self,
        frame: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        spmv_tasks: "set[asyncio.Task]",
    ) -> bool:
        """Handle one frame; returns True when the reader should stop."""
        op = frame.get("op") if isinstance(frame, dict) else None
        if op == "spmv":
            task = asyncio.get_running_loop().create_task(
                self._handle_spmv(frame, writer, write_lock)
            )
            spmv_tasks.add(task)
            task.add_done_callback(spmv_tasks.discard)
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
            return False
        if op == "ping":
            await self._send(writer, write_lock, {
                "op": "ping", "ok": True, "accepting": self.core.accepting,
            })
            return False
        if op == "list":
            await self._send(writer, write_lock, {
                "op": "list", "ok": True, "matrices": self.core.pool.describe(),
            })
            return False
        if op == "stats":
            await self._send(writer, write_lock, {
                "op": "stats", "ok": True, "stats": self.core.stats(),
            })
            return False
        if op == "metrics":
            await self._send(writer, write_lock, {
                "op": "metrics", "ok": True,
                "prometheus": self.core.prometheus(),
            })
            return False
        if op == "shutdown":
            await self._send(writer, write_lock, {
                "op": "shutdown", "ok": True, "draining": True,
            })
            self.stop()
            return True
        await self._send(
            writer, write_lock,
            self._error_frame(
                frame.get("id") if isinstance(frame, dict) else None,
                f"unknown op {op!r}",
            ),
        )
        return False

    async def _handle_spmv(
        self,
        frame: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            request = SpMVRequest.from_wire(frame)
        except ReproError as exc:
            await self._send(
                writer, write_lock, self._error_frame(frame.get("id"), str(exc))
            )
            return
        response = await self.core.submit(request)
        await self._send(writer, write_lock, response.to_wire())

    @staticmethod
    def _error_frame(request_id: Any, message: str) -> Dict[str, Any]:
        return {
            "op": "spmv" if request_id is not None else "error",
            "id": request_id,
            "status": "error",
            "ok": False,
            "error": message,
            "error_type": "ValidationError",
        }

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame: Dict[str, Any],
    ) -> None:
        data = (json.dumps(frame) + "\n").encode("utf-8")
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # response undeliverable; the request itself completed


def serve(pool: MatrixPool, config: Optional[ServerConfig] = None) -> None:
    """Run a server until interrupted (the ``repro serve`` entry point)."""

    async def _main() -> None:
        server = SpMVServer(pool, config)
        await server.start()
        sock = server.port
        print(f"repro serve: listening on {server.config.host}:{sock} "
              f"({len(pool)} matrices pooled)", flush=True)
        try:
            await server.serve_until_stopped()
        except asyncio.CancelledError:
            await server._shutdown()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shut down", flush=True)
