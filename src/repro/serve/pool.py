"""The server's matrix inventory: sealed containers + one warm PlanCache.

A :class:`MatrixPool` owns the set of matrices a server is willing to
multiply by. Every entry is a sealed container (sealing is applied on
admission when the format supports it), so the pool's shared
:class:`~repro.kernels.plancache.PlanCache` warm-starts by content
fingerprint: a matrix loaded from a ``.brx`` file hits the plan built
for its twin object, and a re-started server re-pays only the decode,
never per-request.

Entries arrive three ways and behave identically afterwards::

    pool = MatrixPool(device="k20")
    pool.add("qcd", matrix)                 # an existing container
    pool.load("web", "crawl.brx")           # a sealed .brx file (verified)
    pool.load_suite("cant", scale=0.05,     # generate + convert + seal
                    format="bro_ell", h=256)
    pool.warm()                             # build every plan up front

The pool is thread-safe: the asyncio server reads it from the event
loop while executor threads resolve plans through the shared cache, and
``repro serve`` may load matrices while requests are in flight.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import registry as _registry
from ..errors import ReproError, ServeError
from ..formats.base import SparseFormat
from ..formats.conversion import convert as _convert
from ..gpu.device import DeviceSpec, get_device
from ..integrity.checksums import is_sealed, seal as _seal
from ..kernels.plancache import PlanCache

__all__ = ["MatrixPool", "PoolEntry"]


@dataclass(frozen=True)
class PoolEntry:
    """One pooled matrix and its JSON-able description."""

    name: str
    matrix: SparseFormat

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "format": self.matrix.format_name,
            "shape": list(self.matrix.shape),
            "nnz": int(self.matrix.nnz),
            "sealed": is_sealed(self.matrix),
            "plannable": _registry.has_planner(self.matrix.format_name),
        }


class MatrixPool:
    """Named, sealed containers sharing one prepared-plan cache."""

    def __init__(
        self,
        device: Union[DeviceSpec, str] = "k20",
        *,
        plan_cache: Optional[PlanCache] = None,
        compute_backend: str = "auto",
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.compute_backend = compute_backend
        self._entries: Dict[str, PoolEntry] = {}
        self._lock = threading.Lock()

    # -- admission ------------------------------------------------------
    def add(self, name: str, matrix: SparseFormat) -> PoolEntry:
        """Adopt an existing container under ``name`` (sealed on entry
        when the format supports integrity extraction)."""
        if not name:
            raise ServeError("pool entries need a non-empty name")
        if not is_sealed(matrix):
            try:
                _seal(matrix)
            except ReproError:
                pass  # format without an integrity extractor: pool unsealed
        entry = PoolEntry(name=name, matrix=matrix)
        with self._lock:
            if name in self._entries:
                raise ServeError(
                    f"pool already holds a matrix named {name!r}; "
                    f"remove() it first to replace"
                )
            self._entries[name] = entry
        return entry

    def load(
        self,
        name: str,
        path: Union[str, os.PathLike],
        *,
        mmap_arrays: bool = True,
    ) -> PoolEntry:
        """Load a sealed ``.brx`` container (seal verified on load)."""
        from ..serialize import load_container

        return self.add(
            name, load_container(path, mmap_arrays=mmap_arrays, verify=True)
        )

    def load_suite(
        self,
        name: str,
        *,
        scale: float = 0.05,
        format: str = "bro_ell",
        seed: Optional[int] = None,
        **convert_kwargs: Any,
    ) -> PoolEntry:
        """Generate a Table 2 matrix, convert it and pool it sealed."""
        from ..matrices.suite import generate

        coo = generate(name, scale=scale, seed=seed)
        return self.add(name, _convert(coo, format, **convert_kwargs))

    def remove(self, name: str) -> None:
        """Drop an entry (its cached plans are invalidated)."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise ServeError(f"pool holds no matrix named {name!r}")
        self.plan_cache.invalidate(entry.matrix)

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> SparseFormat:
        """The container registered under ``name`` (typed error if absent)."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ServeError(
                f"unknown matrix {name!r}; pooled: "
                f"{', '.join(self.names()) or '(empty)'}"
            )
        return entry.matrix

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- warm-up --------------------------------------------------------
    def warm(self, backend: Optional[str] = None) -> int:
        """Build the plan of every plannable entry now; returns how many
        plans were ensured. Idempotent: warm plans are cache hits."""
        warmed = 0
        backend = backend if backend is not None else self.compute_backend
        for entry in self.entries():
            if _registry.has_planner(entry.matrix.format_name):
                self.plan_cache.get_or_build(
                    entry.matrix, self.device, backend=backend
                )
                warmed += 1
        return warmed

    def entries(self) -> List[PoolEntry]:
        with self._lock:
            return [self._entries[k] for k in sorted(self._entries)]

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-able inventory (the ``list`` op's payload)."""
        return [e.describe() for e in self.entries()]
