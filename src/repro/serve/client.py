"""Blocking NDJSON client for :class:`~repro.serve.server.SpMVServer`.

A :class:`ServeClient` is a thin synchronous wrapper over one TCP
connection: it speaks the same one-frame-per-line protocol the server
does, turns ``spmv`` frames back into typed
:class:`~repro.serve.api.SpMVResponse` objects, and supports
*pipelining* — writing a burst of requests before reading any response —
which is how a single-threaded caller exercises the server's
micro-batcher::

    with ServeClient("127.0.0.1", port) as client:
        resp = client.spmv("qcd", x)                  # one round trip
        responses = client.pipeline([                 # one batch window
            SpMVRequest(request_id=f"r{i}", matrix="qcd", x=x)
            for i in range(16)
        ])

The client is intentionally not thread-safe: one connection, one
caller. Concurrency belongs either to many clients (one per thread /
load-generator worker) or to :meth:`pipeline` on one connection.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from ..errors import ServeError
from .api import SpMVRequest, SpMVResponse

__all__ = ["ServeClient"]


class ServeClient:
    """Synchronous line-oriented client for one server connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count()
        self._closed = False

    # -- plumbing -------------------------------------------------------
    def _send_frame(self, frame: Dict[str, Any]) -> None:
        if self._closed:
            raise ServeError("client is closed")
        self._file.write((json.dumps(frame) + "\n").encode("utf-8"))

    def _read_frame(self) -> Dict[str, Any]:
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            frame = json.loads(line.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ServeError(f"malformed frame from server: {exc}") from exc
        if not isinstance(frame, dict):
            raise ServeError(f"expected a JSON object frame, got {frame!r}")
        return frame

    def _roundtrip(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self._send_frame(frame)
        return self._read_frame()

    # -- ops ------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness probe; True when the server answers and accepts."""
        reply = self._roundtrip({"op": "ping"})
        return bool(reply.get("ok")) and bool(reply.get("accepting", True))

    def list_matrices(self) -> List[Dict[str, Any]]:
        reply = self._roundtrip({"op": "list"})
        return list(reply.get("matrices", ()))

    def stats(self) -> Dict[str, Any]:
        reply = self._roundtrip({"op": "stats"})
        return dict(reply.get("stats", {}))

    def prometheus(self) -> str:
        reply = self._roundtrip({"op": "metrics"})
        return str(reply.get("prometheus", ""))

    def shutdown_server(self) -> bool:
        """Ask the server to drain and stop (acked before the drain)."""
        reply = self._roundtrip({"op": "shutdown"})
        return bool(reply.get("ok"))

    # -- spmv -----------------------------------------------------------
    def submit(self, request: SpMVRequest) -> SpMVResponse:
        """One request, one typed response (errors come back in-band)."""
        reply = self._roundtrip(request.to_wire())
        return SpMVResponse.from_wire(reply)

    def spmv(
        self,
        matrix: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        policy: Optional[Dict[str, Any]] = None,
    ) -> SpMVResponse:
        """Convenience: build the request (auto request-id) and submit."""
        request = SpMVRequest(
            request_id=f"c{next(self._ids)}",
            matrix=matrix,
            x=np.asarray(x, dtype=np.float64),
            tenant=tenant,
            policy=policy,
        )
        return self.submit(request)

    def pipeline(self, requests: Iterable[SpMVRequest]) -> List[SpMVResponse]:
        """Write every request before reading any response.

        The burst lands inside one event-loop window on the server, so
        same-key requests coalesce into micro-batches. Responses may
        arrive out of order; they are re-matched by request id and
        returned in *request* order.
        """
        reqs = list(requests)
        ids = [r.request_id for r in reqs]
        if len(set(ids)) != len(ids):
            raise ServeError("pipeline() requests must have unique request_ids")
        for r in reqs:
            self._send_frame(r.to_wire())
        by_id: Dict[str, SpMVResponse] = {}
        while len(by_id) < len(reqs):
            resp = SpMVResponse.from_wire(self._read_frame())
            by_id[resp.request_id] = resp
        return [by_id[i] for i in ids]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
