"""Load generation and latency benchmarking for the serving layer.

Two entry points:

* :func:`run_load` — a thread-per-connection closed-loop load generator
  against a *running* :class:`~repro.serve.server.SpMVServer` socket.
  Every worker owns one :class:`~repro.serve.client.ServeClient` and
  fires requests as fast as the server answers; responses are checked
  bit-for-bit against locally precomputed expected products, so the
  report can assert **zero corrupted** responses under concurrency.
  This is what the ``serve-smoke`` CI job drives.
* :func:`serve_bench` — the ``repro serve-bench`` experiment: an
  in-process :class:`~repro.serve.server.ServerCore` benchmark that
  measures micro-batched throughput at fixed concurrency against the
  unbatched serial baseline (direct ``run_spmv`` per vector on the same
  warm plan cache), checks bit-identity of every served product, and
  emits ``BENCH_serve.json``-compatible rows. The gated metric is
  ``batch_speedup`` (within-run ratio — stable across machine speeds);
  raw wall-clock latencies are informational columns.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ServeError, ValidationError
from ..exec.policy import ExecutionPolicy
from ..kernels.dispatch import run_spmv
from ..telemetry.benchreport import make_report
from .api import ServerConfig, SpMVRequest
from .client import ServeClient
from .pool import MatrixPool
from .server import ServerCore

__all__ = ["LoadReport", "run_load", "serve_bench"]


def _percentile(sorted_ms: Sequence[float], p: float) -> float:
    """Exact (nearest-rank) percentile of an already-sorted sample."""
    if not sorted_ms:
        return 0.0
    rank = max(0, min(len(sorted_ms) - 1, int(round(p / 100.0 * len(sorted_ms))) - 1))
    return sorted_ms[rank]


@dataclass
class LoadReport:
    """Outcome of one load-generation run (JSON-able via describe())."""

    requests: int = 0
    ok: int = 0
    rejected: int = 0
    errors: int = 0
    #: ok responses whose y mismatched the locally computed product
    corrupted: int = 0
    duration_s: float = 0.0
    concurrency: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    #: per-response batch sizes (server-attributed coalescing)
    batch_sizes: List[int] = field(default_factory=list)
    error_samples: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def percentile(self, p: float) -> float:
        return _percentile(sorted(self.latencies_ms), p)

    @property
    def clean(self) -> bool:
        """No dropped, corrupted or errored responses."""
        return (
            self.errors == 0
            and self.corrupted == 0
            and self.ok + self.rejected == self.requests
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": self.errors,
            "corrupted": self.corrupted,
            "duration_s": self.duration_s,
            "concurrency": self.concurrency,
            "throughput_rps": self.throughput_rps,
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "error_samples": self.error_samples[:5],
        }


def run_load(
    host: str,
    port: int,
    *,
    matrix: str,
    xs: Sequence[np.ndarray],
    expected: Optional[Sequence[np.ndarray]] = None,
    requests: int = 64,
    concurrency: int = 8,
    tenants: Sequence[str] = ("default",),
    policy: Optional[Dict[str, Any]] = None,
    timeout_s: float = 60.0,
) -> LoadReport:
    """Closed-loop load against a running server socket.

    ``concurrency`` workers each hold one connection; request ``r``
    multiplies by ``xs[r % len(xs)]`` under tenant
    ``tenants[r % len(tenants)]``. When ``expected`` is given (aligned
    with ``xs``), each ok response is compared **bit-for-bit** and
    mismatches counted as ``corrupted``.
    """
    if not xs:
        raise ValidationError("run_load needs at least one x vector")
    if expected is not None and len(expected) != len(xs):
        raise ValidationError("expected must align with xs")
    if requests < 1 or concurrency < 1:
        raise ValidationError("requests and concurrency must be >= 1")

    report = LoadReport(requests=requests, concurrency=concurrency)
    lock = threading.Lock()
    counter = iter(range(requests))

    def worker(worker_id: int) -> None:
        with ServeClient(host, port, timeout_s=timeout_s) as client:
            while True:
                with lock:
                    r = next(counter, None)
                if r is None:
                    return
                x = xs[r % len(xs)]
                req = SpMVRequest(
                    request_id=f"w{worker_id}.r{r}",
                    matrix=matrix,
                    x=x,
                    tenant=tenants[r % len(tenants)],
                    policy=policy,
                )
                t0 = time.perf_counter()
                try:
                    resp = client.submit(req)
                except ServeError as exc:
                    with lock:
                        report.errors += 1
                        report.error_samples.append(f"transport: {exc}")
                    continue
                latency_ms = 1e3 * (time.perf_counter() - t0)
                with lock:
                    if resp.ok:
                        report.ok += 1
                        report.latencies_ms.append(latency_ms)
                        report.batch_sizes.append(resp.batch_size)
                        if expected is not None and not np.array_equal(
                            resp.y, expected[r % len(xs)]
                        ):
                            report.corrupted += 1
                    elif resp.rejected:
                        report.rejected += 1
                    else:
                        report.errors += 1
                        report.error_samples.append(
                            f"{resp.error_type}: {resp.error}"
                        )

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout_s)
    report.duration_s = time.perf_counter() - t_start
    alive = [t for t in threads if t.is_alive()]
    if alive:
        report.errors += 1
        report.error_samples.append(
            f"{len(alive)} load worker(s) still running at timeout"
        )
    return report


# ----------------------------------------------------------------------
# serve-bench: micro-batching vs the unbatched serial baseline
# ----------------------------------------------------------------------


async def _drive_concurrent(
    core: ServerCore, requests: List[SpMVRequest], concurrency: int
) -> List:
    """Submit every request with a closed concurrency bound."""
    sem = asyncio.Semaphore(concurrency)

    async def one(req: SpMVRequest):
        async with sem:
            return await core.submit(req)

    return await asyncio.gather(*[one(r) for r in requests])


def serve_bench(
    *,
    matrix: str = "qcd5_4",
    scale: float = 0.05,
    format: str = "bro_ell",
    device: str = "k20",
    requests: int = 256,
    concurrency: int = 16,
    batch_window_ms: float = 2.0,
    max_batch: int = 16,
    distinct_vectors: int = 8,
    seed: int = 1234,
    h: Optional[int] = 64,
    **convert_kwargs: Any,
) -> Dict[str, Any]:
    """Benchmark micro-batched serving throughput vs the serial baseline.

    Returns ``{"report": <BENCH rows>, "summary": {...}}`` where the
    report is :func:`~repro.telemetry.benchreport.make_report`-shaped
    (run name ``"serve"``). Raises :class:`ServeError` if any served
    product is not bit-identical to the direct ``run_spmv`` of the same
    vector — correctness is a precondition of the benchmark, not a
    metric.

    The defaults are calibrated for amortization headroom:
    ``max_batch == concurrency`` flushes every wave on the size bound
    (no window wait), and slice height ``h=64`` keeps the multi-RHS
    replay's per-slice blocks cache-resident, where one 16-wide
    ``run_spmm`` beats 16 serial ``run_spmv`` calls by ~3x. ``h=None``
    leaves the format's conversion default.
    """
    pool = MatrixPool(device=device)
    if h is not None:
        convert_kwargs.setdefault("h", h)
    entry = pool.load_suite(matrix, scale=scale, format=format, seed=seed,
                            **convert_kwargs)
    pool.warm()
    mat = entry.matrix
    n = mat.shape[1]

    rng = np.random.default_rng(seed)
    xs = [rng.standard_normal(n) for _ in range(distinct_vectors)]

    policy = ExecutionPolicy(plan_cache=pool.plan_cache)

    # --- serial unbatched baseline: one direct run_spmv per request ----
    expected = [run_spmv(mat, x, device, policy=policy).y for x in xs]
    t0 = time.perf_counter()
    for r in range(requests):
        run_spmv(mat, xs[r % distinct_vectors], device, policy=policy)
    serial_s = time.perf_counter() - t0
    serial_rps = requests / serial_s if serial_s > 0 else 0.0

    # --- micro-batched serving path ------------------------------------
    config = ServerConfig(
        device=device,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        max_queue=max(256, requests),
    )
    core = ServerCore(pool, config)
    reqs = [
        SpMVRequest(
            request_id=f"b{r}",
            matrix=matrix,
            x=xs[r % distinct_vectors],
            tenant=f"tenant{r % 2}",
        )
        for r in range(requests)
    ]

    async def _bench() -> tuple:
        t0 = time.perf_counter()
        responses = await _drive_concurrent(core, reqs, concurrency)
        elapsed = time.perf_counter() - t0
        await core.shutdown()
        return responses, elapsed

    responses, batched_s = asyncio.run(_bench())
    batched_rps = requests / batched_s if batched_s > 0 else 0.0

    # --- correctness: every response ok and bit-identical --------------
    not_ok = [r for r in responses if not r.ok]
    if not_ok:
        raise ServeError(
            f"serve-bench: {len(not_ok)}/{requests} responses not ok "
            f"(first: {not_ok[0].error_type}: {not_ok[0].error})"
        )
    corrupted = sum(
        0 if np.array_equal(resp.y, expected[r % distinct_vectors]) else 1
        for r, resp in enumerate(responses)
    )
    if corrupted:
        raise ServeError(
            f"serve-bench: {corrupted}/{requests} responses differ from "
            f"direct run_spmv (bit-identity violated)"
        )

    occupancy = core.batch_occupancy()
    latencies = sorted(r.queue_ms + r.execute_ms for r in responses)
    speedup = batched_rps / serial_rps if serial_rps > 0 else 0.0

    row = {
        "benchmark": "serve_microbatch",
        "matrix": matrix,
        "format": mat.format_name,
        "device": device,
        "concurrency": concurrency,
        "requests": requests,
        "max_batch": max_batch,
        # gated (within-run ratio; machine-speed invariant):
        "batch_speedup": speedup,
        # informational wall-clock columns (direction 0 — never gate CI):
        "serial_rps": serial_rps,
        "batched_rps": batched_rps,
        "mean_occupancy": occupancy,
        "p50_ms": _percentile(latencies, 50),
        "p99_ms": _percentile(latencies, 99),
        "corrupted": corrupted,
    }
    report = make_report(
        "serve",
        [row],
        scale=scale,
        meta={
            "batch_window_ms": batch_window_ms,
            "distinct_vectors": distinct_vectors,
            "seed": seed,
            "h": convert_kwargs.get("h"),
        },
    )
    summary = {
        "serial_rps": serial_rps,
        "batched_rps": batched_rps,
        "batch_speedup": speedup,
        "mean_occupancy": occupancy,
        "p50_ms": row["p50_ms"],
        "p99_ms": row["p99_ms"],
        "corrupted": corrupted,
    }
    return {"report": report, "summary": summary}
