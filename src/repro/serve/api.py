"""The typed request/result schema of the serving layer — one source of
truth for wire frames, in-process calls and CLI output.

Three frozen dataclasses define the entire public contract:

* :class:`SpMVRequest` — what a tenant asks for: a pooled matrix by
  name, an ``x`` vector (or a ``(n, k)`` batch), the tenant identity and
  optional per-request :class:`~repro.exec.policy.ExecutionPolicy`
  overrides.
* :class:`SpMVResponse` — what every execution path returns: the product
  (bit-identical to a direct :func:`~repro.kernels.dispatch.run_spmv`),
  a three-valued ``status`` (``ok`` / ``rejected`` / ``error``), the
  micro-batch it rode in and server-side timing attribution.
* :class:`ServerConfig` — the server's knobs: bind address, admission
  bound, micro-batch window/size, executor width and default policy.

The same objects serialize to the newline-delimited JSON wire protocol
(:meth:`SpMVRequest.to_wire` / :meth:`SpMVResponse.from_wire`), drive
the in-process :meth:`~repro.serve.server.ServerCore.submit` fast path,
and back ``repro spmv --json`` CLI output — so a payload captured from
any of the three is parseable by the same ``from_wire``.

JSON float round-tripping is exact in Python (``repr`` shortest
round-trip), so a vector surviving the wire is bit-identical to the
array that entered it; the serve test suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from ..exec.policy import ExecutionPolicy

__all__ = [
    "SpMVRequest",
    "SpMVResponse",
    "ServerConfig",
    "POLICY_OVERRIDE_FIELDS",
    "policy_key",
    "apply_policy_overrides",
]

#: Wire schema version; bumped on incompatible frame changes.
WIRE_VERSION = 1

#: ExecutionPolicy fields a request may override per call. Deliberately
#: the JSON-scalar subset: object-valued fields (fallback containers,
#: explicit plans, chaos policies) cannot cross the wire.
POLICY_OVERRIDE_FIELDS = (
    "engine",
    "verify",
    "devices",
    "partitioner",
    "comms",
    "backend",
    "compute_backend",
)


def policy_key(overrides: Optional[Mapping[str, Any]]) -> Tuple:
    """Canonical hashable identity of a request's policy overrides.

    Requests coalesce into one micro-batch only when their keys are
    equal, so two spellings of the same overrides must map to one key.
    Unknown fields raise a typed error at admission rather than being
    silently dropped into a shared batch.
    """
    if not overrides:
        return ()
    bad = sorted(set(overrides) - set(POLICY_OVERRIDE_FIELDS))
    if bad:
        raise ValidationError(
            f"unknown policy override(s) {bad}; allowed: "
            f"{', '.join(POLICY_OVERRIDE_FIELDS)}"
        )
    return tuple(sorted((k, overrides[k]) for k in overrides))


def apply_policy_overrides(
    policy: ExecutionPolicy, overrides: Optional[Mapping[str, Any]]
) -> ExecutionPolicy:
    """The server's default policy with a request's overrides applied
    (full :class:`ExecutionPolicy` validation re-runs)."""
    if not overrides:
        return policy
    policy_key(overrides)  # reject unknown fields with the typed error
    return policy.with_(**overrides)


def _as_x(value: Any) -> np.ndarray:
    x = np.asarray(value, dtype=np.float64)
    if x.ndim not in (1, 2):
        raise ValidationError(
            f"request x must be a 1-D vector or a (n, k) batch, "
            f"got ndim={x.ndim}"
        )
    if x.size == 0:
        raise ValidationError("request x is empty")
    return x


@dataclass(frozen=True)
class SpMVRequest:
    """One tenant request: ``y = A @ x`` against a pooled matrix.

    ``x`` with ``ndim == 1`` is a single-vector request eligible for
    micro-batching with concurrent requests for the same
    ``(matrix, policy)``; ``ndim == 2`` is an explicit ``(n, k)``
    multi-RHS batch executed as one ``run_spmm`` without coalescing.
    """

    request_id: str
    matrix: str
    x: np.ndarray = field(compare=False)
    tenant: str = "default"
    #: scalar ExecutionPolicy overrides (see POLICY_OVERRIDE_FIELDS).
    policy: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValidationError("request_id must be non-empty")
        if not self.matrix:
            raise ValidationError("request names no matrix")
        object.__setattr__(self, "x", _as_x(self.x))
        policy_key(self.policy)  # validate override names eagerly

    @property
    def is_batch(self) -> bool:
        return self.x.ndim == 2

    @property
    def n_vectors(self) -> int:
        return 1 if self.x.ndim == 1 else int(self.x.shape[1])

    def to_wire(self) -> Dict[str, Any]:
        """The request as a JSON-able wire frame (``op: "spmv"``)."""
        frame: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "op": "spmv",
            "id": self.request_id,
            "matrix": self.matrix,
            "tenant": self.tenant,
            "x": self.x.tolist(),
        }
        if self.policy:
            frame["policy"] = dict(self.policy)
        return frame

    @classmethod
    def from_wire(cls, frame: Mapping[str, Any]) -> "SpMVRequest":
        """Parse a wire frame; raises :class:`ValidationError` on any
        missing/ill-typed field (never a bare ``KeyError``)."""
        if not isinstance(frame, Mapping):
            raise ValidationError(
                f"request frame must be a JSON object, got "
                f"{type(frame).__name__}"
            )
        missing = [k for k in ("id", "matrix", "x") if k not in frame]
        if missing:
            raise ValidationError(f"request frame missing field(s) {missing}")
        policy = frame.get("policy")
        if policy is not None and not isinstance(policy, Mapping):
            raise ValidationError("request policy must be a JSON object")
        try:
            x = _as_x(frame["x"])
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"request x is not numeric: {exc}") from exc
        return cls(
            request_id=str(frame["id"]),
            matrix=str(frame["matrix"]),
            x=x,
            tenant=str(frame.get("tenant", "default")),
            policy=dict(policy) if policy else None,
        )


@dataclass(frozen=True)
class SpMVResponse:
    """The one result record of the serving layer.

    ``status`` is three-valued: ``"ok"`` (y bit-identical to a direct
    ``run_spmv``/``run_spmm`` of the same inputs), ``"rejected"``
    (admission control refused the request before execution — the
    HTTP-429 analogue, carrying no ``y``) and ``"error"`` (execution
    raised; ``error_type``/``error`` carry the typed failure).

    Every execution path attaches ``y`` to ok responses; a *summary*
    frame (``to_wire(include_y=False)``, e.g. ``repro spmv --json``)
    elides it, so an ok response parsed from such a frame has
    ``y is None``.
    """

    request_id: str
    status: str
    matrix: str = ""
    format: str = ""
    tenant: str = "default"
    y: Optional[np.ndarray] = field(default=None, compare=False)
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: how many single-vector requests shared this request's run_spmm call
    batch_size: int = 1
    #: admission-to-execution-start wait, milliseconds
    queue_ms: float = 0.0
    #: execution wallclock of the (possibly shared) kernel call, ms
    execute_ms: float = 0.0
    #: free-form extras (timing breakdowns, counters, server identity)
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    _STATUSES = ("ok", "rejected", "error")

    def __post_init__(self) -> None:
        if self.status not in self._STATUSES:
            raise ValidationError(
                f"response status must be one of {self._STATUSES}, "
                f"got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    # -- constructors ---------------------------------------------------
    @classmethod
    def success(
        cls,
        request: SpMVRequest,
        y: np.ndarray,
        *,
        format: str = "",
        batch_size: int = 1,
        queue_ms: float = 0.0,
        execute_ms: float = 0.0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "SpMVResponse":
        return cls(
            request_id=request.request_id,
            status="ok",
            matrix=request.matrix,
            format=format,
            tenant=request.tenant,
            y=np.asarray(y),
            batch_size=batch_size,
            queue_ms=queue_ms,
            execute_ms=execute_ms,
            meta=dict(meta) if meta else {},
        )

    @classmethod
    def failure(
        cls,
        request: SpMVRequest,
        exc: BaseException,
        *,
        status: str = "error",
        queue_ms: float = 0.0,
    ) -> "SpMVResponse":
        return cls(
            request_id=request.request_id,
            status=status,
            matrix=request.matrix,
            tenant=request.tenant,
            error=str(exc),
            error_type=type(exc).__name__,
            queue_ms=queue_ms,
        )

    # -- wire -----------------------------------------------------------
    def to_wire(self, include_y: bool = True) -> Dict[str, Any]:
        """The response as a JSON-able frame.

        ``include_y=False`` elides the product vector (CLI summaries,
        logs); everything else round-trips through :meth:`from_wire`.
        """
        frame: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "op": "spmv",
            "id": self.request_id,
            "status": self.status,
            "ok": self.ok,
            "matrix": self.matrix,
            "format": self.format,
            "tenant": self.tenant,
            "batch_size": self.batch_size,
            "queue_ms": self.queue_ms,
            "execute_ms": self.execute_ms,
        }
        if self.y is not None and include_y:
            frame["y"] = self.y.tolist()
        if self.error is not None:
            frame["error"] = self.error
            frame["error_type"] = self.error_type
        if self.meta:
            frame["meta"] = self.meta
        return frame

    @classmethod
    def from_wire(cls, frame: Mapping[str, Any]) -> "SpMVResponse":
        if not isinstance(frame, Mapping) or "status" not in frame:
            raise ValidationError("response frame missing 'status'")
        y = frame.get("y")
        return cls(
            request_id=str(frame.get("id", "")),
            status=str(frame["status"]),
            matrix=str(frame.get("matrix", "")),
            format=str(frame.get("format", "")),
            tenant=str(frame.get("tenant", "default")),
            y=np.asarray(y, dtype=np.float64) if y is not None else None,
            error=frame.get("error"),
            error_type=frame.get("error_type"),
            batch_size=int(frame.get("batch_size", 1)),
            queue_ms=float(frame.get("queue_ms", 0.0)),
            execute_ms=float(frame.get("execute_ms", 0.0)),
            meta=dict(frame.get("meta") or {}),
        )


@dataclass(frozen=True)
class ServerConfig:
    """Complete configuration of one :class:`~repro.serve.server.SpMVServer`.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` binds an ephemeral port (the bound port
        is readable from ``server.port`` once started).
    device:
        Simulated device every pooled execution runs on.
    max_queue:
        Admission bound: the maximum number of requests admitted but not
        yet completed. Request ``max_queue + 1`` is rejected with a
        ``status="rejected"`` response (:class:`~repro.errors.AdmissionError`
        in-process) instead of queueing unboundedly.
    batch_window_ms:
        Micro-batch coalescing window: the first single-vector request
        for a ``(matrix, policy)`` key opens a batch that flushes after
        this many milliseconds or at ``max_batch``, whichever is first.
        ``0`` flushes on the next event-loop tick (batching across
        concurrent arrivals still happens; idle waiting does not).
    max_batch:
        Upper bound on coalesced vectors per ``run_spmm`` call.
    executor_threads:
        Width of the thread pool the (GIL-releasing NumPy) kernel calls
        run on, i.e. how many distinct micro-batches execute in parallel.
    drain_timeout_s:
        Graceful-shutdown budget: how long :meth:`ServerCore.shutdown`
        waits for admitted requests to finish before cancelling them.
    max_line_bytes:
        Transport frame limit for one NDJSON line (vectors are plain
        JSON arrays; size this to your largest matrix dimension).
    policy:
        Default :class:`ExecutionPolicy` executions run under; requests
        may override the scalar fields (POLICY_OVERRIDE_FIELDS).
    """

    host: str = "127.0.0.1"
    port: int = 0
    device: str = "k20"
    max_queue: int = 256
    batch_window_ms: float = 2.0
    max_batch: int = 32
    executor_threads: int = 4
    drain_timeout_s: float = 10.0
    max_line_bytes: int = 32 * 1024 * 1024
    policy: Optional[ExecutionPolicy] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValidationError("max_queue must be >= 1")
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.batch_window_ms < 0:
            raise ValidationError("batch_window_ms must be >= 0")
        if self.executor_threads < 1:
            raise ValidationError("executor_threads must be >= 1")
        if self.drain_timeout_s < 0:
            raise ValidationError("drain_timeout_s must be >= 0")
        if self.max_line_bytes < 4096:
            raise ValidationError("max_line_bytes must be >= 4096")
        if not (0 <= self.port <= 65535):
            raise ValidationError(f"port must be in [0, 65535], got {self.port}")

    def resolved_policy(self) -> ExecutionPolicy:
        """The default policy, materialized (``None`` → default policy)."""
        return self.policy if self.policy is not None else ExecutionPolicy()

    def with_(self, **updates: Any) -> "ServerConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **updates)

    def describe(self) -> Dict[str, Any]:
        """JSON-able summary (the policy reduced to its describe dict)."""
        return {
            "host": self.host,
            "port": self.port,
            "device": self.device,
            "max_queue": self.max_queue,
            "batch_window_ms": self.batch_window_ms,
            "max_batch": self.max_batch,
            "executor_threads": self.executor_threads,
            "drain_timeout_s": self.drain_timeout_s,
            "policy": self.resolved_policy().describe(),
        }
