"""SpMV-as-a-service: asyncio serving layer over the repro pipeline.

The paper's central economics — encode a matrix once, amortize the cost
over many multiplications — is exactly the shape of a *service*: matrices
are long-lived, vectors arrive continuously. This subpackage turns the
library into that service:

* :mod:`repro.serve.api` — the typed contract: :class:`SpMVRequest`,
  :class:`SpMVResponse`, :class:`ServerConfig`, and the NDJSON wire
  codecs shared by socket, in-process and CLI paths.
* :mod:`repro.serve.pool` — :class:`MatrixPool`: named sealed containers
  sharing one warm :class:`~repro.kernels.plancache.PlanCache`.
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces
  concurrent single-vector requests for the same ``(matrix, policy)``
  into one multi-RHS ``run_spmm`` call within a bounded window.
* :mod:`repro.serve.server` — :class:`ServerCore` (admission control,
  batching, executor, per-tenant metrics) and :class:`SpMVServer` (the
  newline-delimited-JSON TCP front end).
* :mod:`repro.serve.client` — :class:`ServeClient`: blocking client with
  request pipelining.
* :mod:`repro.serve.loadgen` — :func:`run_load` (concurrent load with
  bit-exact response verification) and :func:`serve_bench` (the
  ``repro serve-bench`` throughput/latency experiment).

Quick start::

    from repro.serve import MatrixPool, ServerConfig, SpMVServer

    pool = MatrixPool(device="k20")
    pool.load_suite("qcd", scale=0.05, format="bro_ell")
    pool.warm()
    # asyncio: await SpMVServer(pool, ServerConfig(port=7077)).start()
    # blocking daemon: repro.serve.serve(pool, ServerConfig(port=7077))
"""

from .api import (
    POLICY_OVERRIDE_FIELDS,
    ServerConfig,
    SpMVRequest,
    SpMVResponse,
    apply_policy_overrides,
    policy_key,
)
from .batcher import MicroBatcher
from .client import ServeClient
from .loadgen import LoadReport, run_load, serve_bench
from .pool import MatrixPool, PoolEntry
from .server import ServerCore, SpMVServer, serve

__all__ = [
    "SpMVRequest",
    "SpMVResponse",
    "ServerConfig",
    "POLICY_OVERRIDE_FIELDS",
    "policy_key",
    "apply_policy_overrides",
    "MatrixPool",
    "PoolEntry",
    "MicroBatcher",
    "ServerCore",
    "SpMVServer",
    "serve",
    "ServeClient",
    "LoadReport",
    "run_load",
    "serve_bench",
]
