"""Shared dtype and typing conventions.

The library standardizes on the dtypes the paper's CUDA kernels use:

* matrix values: IEEE-754 double precision (``float64``) — the paper's
  evaluation is double precision (Table 1 lists DP throughput);
* index arrays: 32-bit signed integers (``int32``), matching CUSP;
* packed bit streams: unsigned words of the symbol length (``uint32`` or
  ``uint64``).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "VALUE_DTYPE",
    "INDEX_DTYPE",
    "SYMBOL_DTYPES",
    "FloatArray",
    "IndexArray",
    "SymbolArray",
    "ArrayLike",
    "symbol_dtype",
]

#: dtype used for matrix/vector values throughout the library.
VALUE_DTYPE = np.dtype(np.float64)

#: dtype used for row/column index arrays (as in CUSP / the paper).
INDEX_DTYPE = np.dtype(np.int32)

#: mapping from symbol length in bits to the packed-stream word dtype.
SYMBOL_DTYPES = {32: np.dtype(np.uint32), 64: np.dtype(np.uint64)}

FloatArray = npt.NDArray[np.float64]
IndexArray = npt.NDArray[np.int32]
SymbolArray = Union[npt.NDArray[np.uint32], npt.NDArray[np.uint64]]
ArrayLike = npt.ArrayLike


def symbol_dtype(sym_len: int) -> np.dtype:
    """Return the unsigned word dtype backing a ``sym_len``-bit stream.

    Parameters
    ----------
    sym_len:
        Symbol length in bits. The paper uses 32 or 64 (Section 3.1).

    Raises
    ------
    repro.errors.ValidationError
        If ``sym_len`` is not a supported symbol length.
    """
    from .errors import ValidationError

    try:
        return SYMBOL_DTYPES[int(sym_len)]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(
            f"sym_len must be one of {sorted(SYMBOL_DTYPES)}, got {sym_len!r}"
        ) from exc
