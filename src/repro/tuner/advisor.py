"""Format recommendation by model query.

For each candidate format the advisor converts the (possibly sampled)
matrix, runs the simulated kernel once, and ranks formats by predicted
time per non-zero — the device- and size-independent figure of merit.
BRO-ELL/BRO-HYB candidates can sweep the slice height ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..formats.base import SparseFormat
from ..formats.conversion import convert
from ..formats.coo import COOMatrix
from ..gpu.device import DeviceSpec, get_device
from ..kernels.base import get_kernel
from .sampling import sample_rows

__all__ = ["FormatRecommendation", "rank_formats", "recommend_format"]

#: Formats the advisor considers by default (every format with a kernel,
#: except the value-compressed variant which needs value redundancy the
#: advisor checks separately).
DEFAULT_CANDIDATES = (
    "coo",
    "csr",
    "ellpack",
    "ellpack_r",
    "bellpack",
    "sliced_ellpack",
    "hyb",
    "bro_ell",
    "bro_coo",
    "bro_hyb",
)

#: Matrices whose max/mean row-length ratio exceeds this skip the dense
#: ELL-family candidates outright (the padded arrays would not fit on a
#: real device, let alone win).
ELL_PADDING_LIMIT = 20.0


@dataclass(frozen=True)
class FormatRecommendation:
    """One ranked candidate."""

    format_name: str
    params: Dict
    predicted_time: float  #: seconds for one SpMV of the (sampled) matrix
    time_per_nnz: float  #: seconds per non-zero (size-independent)
    gflops: float
    dram_bytes: int

    def describe(self) -> str:
        """One human-readable ranking line."""
        extra = f" {self.params}" if self.params else ""
        return (
            f"{self.format_name:<15s}{extra:<12s} "
            f"{self.gflops:7.2f} GFlop/s  {self.time_per_nnz * 1e12:8.2f} ps/nnz"
        )


def _candidate_grid(
    formats: Sequence[str], h_candidates: Sequence[int]
) -> List[Tuple[str, Dict]]:
    grid: List[Tuple[str, Dict]] = []
    for fmt in formats:
        if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb"):
            for h in h_candidates:
                grid.append((fmt, {"h": int(h)}))
        else:
            grid.append((fmt, {}))
    return grid


def rank_formats(
    coo: COOMatrix,
    device: DeviceSpec | str = "k20",
    formats: Sequence[str] = DEFAULT_CANDIDATES,
    h_candidates: Sequence[int] = (256,),
    sample_rows_limit: int = 16384,
    seed: int = 0,
) -> List[FormatRecommendation]:
    """Rank candidate formats by predicted SpMV time on ``device``.

    Large matrices are row-sampled first (``sample_rows_limit``); the
    per-nnz ranking is what transfers back to the full matrix.
    """
    dev = get_device(device) if isinstance(device, str) else device
    if coo.nnz == 0:
        raise ValidationError("cannot rank formats for an empty matrix")
    sampled, factor = sample_rows(coo, sample_rows_limit, seed=seed)
    x = np.random.default_rng(seed).standard_normal(sampled.shape[1])

    lengths = sampled.row_lengths()
    mean_len = max(float(lengths.mean()), 1e-9)
    padding_ratio = float(lengths.max()) / mean_len

    out: List[FormatRecommendation] = []
    for fmt, params in _candidate_grid(formats, h_candidates):
        if (fmt in ("ellpack", "ellpack_r", "bellpack")
                and padding_ratio > ELL_PADDING_LIMIT):
            continue  # dense ELL arrays would be absurd; HYB covers this
        mat: SparseFormat = convert(sampled, fmt, **params)
        result = get_kernel(fmt).run(mat, x, dev)
        # The per-nnz cost must reflect the FULL matrix's occupancy: the
        # sample has `factor`x fewer threads, which would unfairly punish
        # thread-per-row formats relative to warp-per-interval ones.
        counters = result.counters
        counters.threads = max(1, int(counters.threads * factor))
        from ..gpu.timing import predict

        time = predict(counters, dev).time
        out.append(
            FormatRecommendation(
                format_name=fmt,
                params=params,
                predicted_time=time,
                time_per_nnz=time / sampled.nnz,
                gflops=result.gflops,
                dram_bytes=result.counters.dram_bytes,
            )
        )
    out.sort(key=lambda r: r.time_per_nnz)
    return out


def recommend_format(
    coo: COOMatrix,
    device: DeviceSpec | str = "k20",
    **kwargs,
) -> FormatRecommendation:
    """The advisor's top pick for this matrix on this device."""
    return rank_formats(coo, device, **kwargs)[0]
