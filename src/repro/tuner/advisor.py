"""Format recommendation by model query.

For each candidate format the advisor converts the (possibly sampled)
matrix, runs the simulated kernel once, and ranks formats by predicted
time per non-zero — the device- and size-independent figure of merit.
BRO-ELL/BRO-HYB candidates can sweep the slice height ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import registry as _registry
from ..errors import ValidationError
from ..formats.base import SparseFormat
from ..formats.conversion import convert
from ..formats.coo import COOMatrix
from ..gpu.device import DeviceSpec, get_device
from .sampling import sample_rows

__all__ = [
    "FormatRecommendation",
    "default_candidates",
    "rank_formats",
    "recommend_format",
]


def default_candidates() -> Tuple[str, ...]:
    """Formats the advisor considers by default.

    Every registered format with a kernel whose
    :class:`~repro.registry.TunerProfile` marks it as an advisor
    candidate — specialty variants (multi-threads-per-row, the
    value-compressed and strawman codecs) opt out at their registration
    site.
    """
    out = []
    for fmt in _registry.kernel_formats():
        profile = _registry.tuner_profile_for(fmt)
        if profile is not None and profile.candidate:
            out.append(fmt)
    return tuple(out)

#: Matrices whose max/mean row-length ratio exceeds this skip the dense
#: ELL-family candidates outright (the padded arrays would not fit on a
#: real device, let alone win).
ELL_PADDING_LIMIT = 20.0


@dataclass(frozen=True)
class FormatRecommendation:
    """One ranked candidate."""

    format_name: str
    params: Dict
    predicted_time: float  #: seconds for one SpMV of the (sampled) matrix
    time_per_nnz: float  #: seconds per non-zero (size-independent)
    gflops: float
    dram_bytes: int

    def describe(self) -> str:
        """One human-readable ranking line."""
        extra = f" {self.params}" if self.params else ""
        return (
            f"{self.format_name:<15s}{extra:<12s} "
            f"{self.gflops:7.2f} GFlop/s  {self.time_per_nnz * 1e12:8.2f} ps/nnz"
        )


def _candidate_grid(
    formats: Sequence[str],
    h_candidates: Sequence[int],
    sym_len_candidates: Sequence[int] = (),
) -> List[Tuple[str, Dict]]:
    grid: List[Tuple[str, Dict]] = []
    for fmt in formats:
        profile = _registry.tuner_profile_for(fmt)
        base: List[Dict] = []
        if profile is not None and profile.sweep_h:
            base = [{"h": int(h)} for h in h_candidates]
        else:
            base = [{}]
        # Cross the h sweep with a sym_len sweep for the BRO formats
        # (those whose conversion declares the keyword); an empty
        # sym_len_candidates keeps the format's registered default.
        spec = _registry.get_spec(fmt)
        if sym_len_candidates and spec.accepts("sym_len"):
            for params in base:
                for sl in sym_len_candidates:
                    grid.append((fmt, {**params, "sym_len": int(sl)}))
        else:
            grid.extend((fmt, params) for params in base)
    return grid


def _is_dense_family(fmt: str) -> bool:
    profile = _registry.tuner_profile_for(fmt)
    return profile is not None and profile.dense_family


def rank_formats(
    coo: COOMatrix,
    device: DeviceSpec | str = "k20",
    formats: Optional[Sequence[str]] = None,
    h_candidates: Sequence[int] = (256,),
    sym_len_candidates: Sequence[int] = (),
    sample_rows_limit: int = 16384,
    seed: int = 0,
) -> List[FormatRecommendation]:
    """Rank candidate formats by predicted SpMV time on ``device``.

    Large matrices are row-sampled first (``sample_rows_limit``); the
    per-nnz ranking is what transfers back to the full matrix.
    ``sym_len_candidates`` additionally sweeps the BRO symbol length for
    formats that declare it (empty — the default — keeps each format's
    registered default).
    """
    dev = get_device(device) if isinstance(device, str) else device
    if formats is None:
        formats = default_candidates()
    if coo.nnz == 0:
        raise ValidationError("cannot rank formats for an empty matrix")
    sampled, factor = sample_rows(coo, sample_rows_limit, seed=seed)
    x = np.random.default_rng(seed).standard_normal(sampled.shape[1])

    lengths = sampled.row_lengths()
    mean_len = max(float(lengths.mean()), 1e-9)
    padding_ratio = float(lengths.max()) / mean_len

    out: List[FormatRecommendation] = []
    for fmt, params in _candidate_grid(formats, h_candidates, sym_len_candidates):
        if _is_dense_family(fmt) and padding_ratio > ELL_PADDING_LIMIT:
            continue  # dense ELL arrays would be absurd; HYB covers this
        mat: SparseFormat = convert(sampled, fmt, **params)
        result = _registry.kernel_for(fmt).run(mat, x, dev)
        # The per-nnz cost must reflect the FULL matrix's occupancy: the
        # sample has `factor`x fewer threads, which would unfairly punish
        # thread-per-row formats relative to warp-per-interval ones.
        counters = result.counters
        counters.threads = max(1, int(counters.threads * factor))
        from ..gpu.timing import predict

        time = predict(counters, dev).time
        out.append(
            FormatRecommendation(
                format_name=fmt,
                params=params,
                predicted_time=time,
                time_per_nnz=time / sampled.nnz,
                gflops=result.gflops,
                dram_bytes=result.counters.dram_bytes,
            )
        )
    out.sort(key=lambda r: r.time_per_nnz)
    return out


def recommend_format(
    coo: COOMatrix,
    device: DeviceSpec | str = "k20",
    **kwargs,
) -> FormatRecommendation:
    """The advisor's top pick for this matrix on this device."""
    return rank_formats(coo, device, **kwargs)[0]
