"""Model-driven format selection (autotuning).

The paper's related work (Section 5) surveys autotuners — clSpMV's
"Cocktail" format selection and the Grewe–Lokhmotov code generator —
that pick a storage format per matrix. This package closes that loop for
the formats implemented here: because the simulated kernels produce a
*predicted time* from counted transactions, format selection becomes a
cheap model query rather than an empirical sweep.

* :mod:`~repro.tuner.advisor` — rank candidate formats for a matrix on a
  device, optionally sweeping BRO-ELL's slice height and the BRO symbol
  length;
* :mod:`~repro.tuner.sampling` — row-sampling so recommendations for huge
  matrices only execute the model on a representative stripe;
* :mod:`~repro.tuner.online` — telemetry-driven online autotuning: watch
  a session's measured throughput and re-plan it onto the measured-best
  candidate (with hysteresis) while it runs.
"""

from .advisor import FormatRecommendation, recommend_format, rank_formats
from .online import OnlineTuner, RetuneConfig
from .sampling import sample_rows

__all__ = [
    "FormatRecommendation",
    "OnlineTuner",
    "RetuneConfig",
    "recommend_format",
    "rank_formats",
    "sample_rows",
]
