"""Model-driven format selection (autotuning).

The paper's related work (Section 5) surveys autotuners — clSpMV's
"Cocktail" format selection and the Grewe–Lokhmotov code generator —
that pick a storage format per matrix. This package closes that loop for
the formats implemented here: because the simulated kernels produce a
*predicted time* from counted transactions, format selection becomes a
cheap model query rather than an empirical sweep.

* :mod:`~repro.tuner.advisor` — rank candidate formats for a matrix on a
  device, optionally sweeping BRO-ELL's slice height;
* :mod:`~repro.tuner.sampling` — row-sampling so recommendations for huge
  matrices only execute the model on a representative stripe.
"""

from .advisor import FormatRecommendation, recommend_format, rank_formats
from .sampling import sample_rows

__all__ = [
    "FormatRecommendation",
    "recommend_format",
    "rank_formats",
    "sample_rows",
]
