"""Row sampling for cheap format recommendations on large matrices.

SpMV cost per row is (to first order) independent across row blocks, so a
contiguous stripe sample preserves the quantities format selection cares
about: row-length distribution (padding, HYB split), delta structure
(compressibility) and x locality. A contiguous stripe — rather than a
random row subset — keeps column indices in their natural range so delta
magnitudes stay representative.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..formats.coo import COOMatrix

__all__ = ["sample_rows"]


def sample_rows(
    coo: COOMatrix, max_rows: int, seed: int = 0
) -> tuple[COOMatrix, float]:
    """Return a row-stripe sample and the scale-up factor ``m / sample_m``.

    The sample keeps the full column dimension, so x-vector locality is
    unchanged; when the matrix already fits in ``max_rows`` it is returned
    as-is with factor 1.0.
    """
    if max_rows <= 0:
        raise ValidationError("max_rows must be positive")
    m, n = coo.shape
    if m <= max_rows:
        return coo, 1.0
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, m - max_rows + 1))
    stop = start + max_rows
    mask = (coo.row_idx >= start) & (coo.row_idx < stop)
    sampled = COOMatrix(
        coo.row_idx[mask].astype(np.int64) - start,
        coo.col_idx[mask],
        coo.vals[mask],
        (max_rows, n),
    )
    return sampled, m / max_rows
