"""Telemetry-driven online autotuning: close the advisor's loop.

The static advisor (:mod:`repro.tuner.advisor`) picks a format once, from
a model query, before any real work runs. This module re-scores that
choice *while a session executes*: an :class:`OnlineTuner` observes every
recorded :class:`~repro.kernels.base.SpMVResult`, accumulates the
measured per-nnz time and achieved DRAM throughput over a window of
``interval`` calls, and when the window closes re-ranks the advisor's
format/``h``/``sym_len`` candidate grid against the measurement. If the
best candidate beats the measured figure by more than the ``hysteresis``
ratio, the session is re-planned in place — its source COO is converted
to the winning candidate, the seal is re-applied if the old container
was sealed, and the plan cache is warmed — all under a ``session.retune``
span with ``exec.retune.*`` counters, so every decision (evaluated, kept,
skipped on hysteresis, triggered) is observable.

Timing in this simulator is modeled and deterministic, so retune
convergence is deterministic too: a session started on a deliberately
poor format converges to the advisor's measured-best candidate within
one window, which is what ``tests/tuner/test_online.py`` pins.

Usage::

    sess = Session().load("qcd").convert("coo").seal()
    sess.autotune(RetuneConfig(interval=8))
    for _ in range(32):
        sess.run(x)               # retunes fire inside run()
    sess.format_name              # now the measured-best format
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import ValidationError
from ..formats.conversion import convert as _convert
from ..integrity.checksums import seal as _seal
from ..telemetry import metrics as _metrics
from ..telemetry.tracer import span as _span
from .advisor import FormatRecommendation, rank_formats

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle guard)
    from ..kernels.base import SpMVResult
    from ..pipeline import Session

__all__ = ["RetuneConfig", "OnlineTuner"]


@dataclass(frozen=True)
class RetuneConfig:
    """Knobs of one online-autotuning loop.

    Parameters
    ----------
    interval:
        Number of recorded SpMV/SpMM calls per measurement window; the
        candidate grid is re-scored when a window closes.
    hysteresis:
        Minimum ratio of measured per-nnz time to the best candidate's
        predicted per-nnz time before a retune fires. ``1.1`` means the
        candidate must promise at least a 10% win — churn insurance, so
        model noise near parity never flaps the format back and forth.
    max_retunes:
        Retune budget per tuner; evaluation stops once it is spent.
    formats:
        Candidate formats (``None`` — the advisor's default candidates).
    h_candidates / sym_len_candidates:
        Slice-height and BRO symbol-length sweeps forwarded to
        :func:`~repro.tuner.advisor.rank_formats`.
    sample_rows_limit / seed:
        Row-sampling bound and RNG seed for the advisor query.
    """

    interval: int = 16
    hysteresis: float = 1.1
    max_retunes: int = 3
    formats: Optional[Tuple[str, ...]] = None
    h_candidates: Tuple[int, ...] = (64, 256)
    sym_len_candidates: Tuple[int, ...] = (32, 64)
    sample_rows_limit: int = 16384
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.interval, int) or self.interval < 1:
            raise ValidationError(
                f"interval must be a positive integer, got {self.interval!r}"
            )
        if self.hysteresis < 1.0:
            raise ValidationError(
                f"hysteresis must be >= 1.0, got {self.hysteresis!r}"
            )
        if not isinstance(self.max_retunes, int) or self.max_retunes < 0:
            raise ValidationError(
                f"max_retunes must be a non-negative integer, "
                f"got {self.max_retunes!r}"
            )


class OnlineTuner:
    """Watches a session's results and re-plans it onto measured-best.

    Attach with :meth:`Session.autotune`; the session then feeds every
    recorded result to :meth:`observe`. The tuner is deliberately *not*
    in the result hot path beyond two float adds until a window closes.
    """

    def __init__(
        self, session: "Session", config: Optional[RetuneConfig] = None
    ) -> None:
        self.session = session
        self.config = config if config is not None else RetuneConfig()
        self.calls_seen = 0
        self.retunes = 0
        #: one dict per closed window: measured figure, best candidate,
        #: decision and achieved throughput — the audit trail.
        self.history: List[Dict[str, Any]] = []
        self._window_time = 0.0
        self._window_nnz = 0
        self._window_bytes = 0

    # -- observation ----------------------------------------------------
    def observe(self, result: "SpMVResult") -> bool:
        """Fold one executed result in; returns True if a retune fired."""
        self.calls_seen += 1
        self._window_time += result.timing.time
        self._window_nnz += self.session.matrix.nnz
        self._window_bytes += result.counters.dram_bytes
        if (
            self.calls_seen % self.config.interval == 0
            and self.retunes < self.config.max_retunes
        ):
            return self._evaluate()
        return False

    # -- evaluation -----------------------------------------------------
    def _current_params_match(self, rec: FormatRecommendation) -> bool:
        """Whether the session already runs the candidate's config."""
        matrix = self.session.matrix
        if matrix.format_name != rec.format_name:
            return False
        return all(
            getattr(matrix, key, None) == value
            for key, value in rec.params.items()
        )

    def _evaluate(self) -> bool:
        cfg = self.config
        session = self.session
        measured_per_nnz = (
            self._window_time / self._window_nnz if self._window_nnz else 0.0
        )
        achieved_bw = (
            self._window_bytes / self._window_time if self._window_time else 0.0
        )
        self._window_time, self._window_nnz, self._window_bytes = 0.0, 0, 0

        with _span("session.retune", "tuner"):
            ranked = rank_formats(
                session.source,
                session.device,
                formats=cfg.formats,
                h_candidates=cfg.h_candidates,
                sym_len_candidates=cfg.sym_len_candidates,
                sample_rows_limit=cfg.sample_rows_limit,
                seed=cfg.seed,
            )
            _metrics.record_retune("evaluations")
            best = ranked[0]
            entry: Dict[str, Any] = {
                "call": self.calls_seen,
                "measured_per_nnz": measured_per_nnz,
                "achieved_bytes_per_s": achieved_bw,
                "best_format": best.format_name,
                "best_params": dict(best.params),
                "best_per_nnz": best.time_per_nnz,
            }

            if self._current_params_match(best):
                _metrics.record_retune("kept", session.format_name)
                entry["decision"] = "kept"
                self.history.append(entry)
                return False

            win = (
                measured_per_nnz / best.time_per_nnz
                if best.time_per_nnz > 0
                else 0.0
            )
            entry["win"] = win
            if win < cfg.hysteresis:
                _metrics.record_retune("skipped_hysteresis", best.format_name)
                entry["decision"] = "skipped_hysteresis"
                self.history.append(entry)
                return False

            self._retune_to(best)
            _metrics.record_retune("triggered", best.format_name)
            entry["decision"] = "triggered"
            self.history.append(entry)
            return True

    def _retune_to(self, rec: FormatRecommendation) -> None:
        """Re-plan the session in place onto the winning candidate."""
        session = self.session
        was_sealed = session.sealed
        new = _convert(session.source, rec.format_name, **rec.params)
        if was_sealed:
            _seal(new)
        session._matrix = new
        session.prepare()
        self.retunes += 1
