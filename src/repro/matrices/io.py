"""MatrixMarket coordinate-format I/O (from scratch, no SciPy).

Supports the subset the UF collection uses for the paper's matrices:
``matrix coordinate (real|integer|pattern) (general|symmetric)``.
Symmetric files are expanded to general storage on read.
"""

from __future__ import annotations

import os
from typing import TextIO, Union

import numpy as np

from ..errors import MatrixMarketError
from ..formats.coo import COOMatrix
from ..telemetry.tracer import NULL_SPAN, span as _span

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def _parse_header(line: str) -> tuple[str, str]:
    parts = line.strip().split()
    if len(parts) != 5 or parts[0] != _HEADER_PREFIX or parts[1].lower() != "matrix":
        raise MatrixMarketError(f"bad MatrixMarket header: {line.strip()!r}")
    _, _, fmt, field, symmetry = (p.lower() for p in parts)
    if fmt != "coordinate":
        raise MatrixMarketError(f"only coordinate format is supported, got {fmt!r}")
    if field not in ("real", "integer", "pattern"):
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
    return field, symmetry


def read_matrix_market(source: Union[str, os.PathLike, TextIO]) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a :class:`COOMatrix`."""
    name = "<stream>" if hasattr(source, "read") else os.fspath(source)
    with _span("matrix.load", "pipeline", source=str(name)) as sp:
        if hasattr(source, "read"):
            coo = _read_stream(source)  # type: ignore[arg-type]
        else:
            with open(source, "r", encoding="ascii") as fh:
                coo = _read_stream(fh)
        if sp is not NULL_SPAN:
            sp.set(rows=coo.shape[0], cols=coo.shape[1], nnz=coo.nnz)
        return coo


def _read_stream(fh: TextIO) -> COOMatrix:
    header = fh.readline()
    if not header:
        raise MatrixMarketError("empty file")
    field, symmetry = _parse_header(header)
    line = fh.readline()
    while line and line.lstrip().startswith("%"):
        line = fh.readline()
    if not line:
        raise MatrixMarketError("missing size line")
    try:
        m, n, nnz = (int(tok) for tok in line.split())
    except ValueError as exc:
        raise MatrixMarketError(f"bad size line: {line.strip()!r}") from exc
    if m <= 0 or n <= 0 or nnz < 0:
        raise MatrixMarketError(
            f"size line must hold positive dimensions and nnz >= 0, "
            f"got {m} {n} {nnz}"
        )

    try:
        body = np.loadtxt(fh, ndmin=2) if nnz else np.zeros((0, 3))
    except ValueError as exc:
        raise MatrixMarketError(f"unparseable entry data: {exc}") from exc
    if body.shape[0] != nnz:
        raise MatrixMarketError(
            f"expected {nnz} entries, file holds {body.shape[0]}"
        )
    if field == "pattern":
        if body.size and body.shape[1] != 2:
            raise MatrixMarketError("pattern entries must have 2 columns")
        rows = body[:, 0].astype(np.int64) - 1
        cols = body[:, 1].astype(np.int64) - 1
        vals = np.ones(nnz)
    else:
        if body.size and body.shape[1] != 3:
            raise MatrixMarketError("real/integer entries must have 3 columns")
        rows = body[:, 0].astype(np.int64) - 1
        cols = body[:, 1].astype(np.int64) - 1
        vals = body[:, 2].astype(np.float64) if nnz else np.zeros(0)

    _check_entries(rows, cols, vals, m, n)

    if symmetry == "symmetric":
        off_diag = rows != cols
        lower_r, lower_c = rows[off_diag], cols[off_diag]
        rows = np.concatenate([rows, lower_c])
        cols = np.concatenate([cols, lower_r])
        vals = np.concatenate([vals, vals[off_diag]])
    return COOMatrix(rows, cols, vals, (m, n))


def _check_entries(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, m: int, n: int
) -> None:
    """Reject out-of-range indices and non-finite values with file-level errors.

    Without these checks a malformed file would either propagate a generic
    :class:`~repro.errors.ValidationError` out of :class:`COOMatrix` or —
    worse, for NaN/Inf values — flow silently into the compressed formats.
    """
    if rows.size == 0:
        return
    if int(rows.min()) < 0 or int(rows.max()) >= m:
        bad = int(np.argmax((rows < 0) | (rows >= m)))
        raise MatrixMarketError(
            f"entry {bad + 1}: row index {int(rows[bad]) + 1} outside [1, {m}]"
        )
    if int(cols.min()) < 0 or int(cols.max()) >= n:
        bad = int(np.argmax((cols < 0) | (cols >= n)))
        raise MatrixMarketError(
            f"entry {bad + 1}: column index {int(cols[bad]) + 1} outside [1, {n}]"
        )
    finite = np.isfinite(vals)
    if not np.all(finite):
        bad = int(np.argmax(~finite))
        raise MatrixMarketError(
            f"entry {bad + 1}: non-finite value {vals[bad]!r} "
            "(NaN/Inf entries are rejected)"
        )


def write_matrix_market(
    matrix: COOMatrix, target: Union[str, os.PathLike, TextIO]
) -> None:
    """Write a :class:`COOMatrix` as ``coordinate real general``."""
    if hasattr(target, "write"):
        _write_stream(matrix, target)  # type: ignore[arg-type]
        return
    with open(target, "w", encoding="ascii") as fh:
        _write_stream(matrix, fh)


def _write_stream(matrix: COOMatrix, fh: TextIO) -> None:
    m, n = matrix.shape
    fh.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
    fh.write("% written by repro (BRO-SpMV reproduction)\n")
    fh.write(f"{m} {n} {matrix.nnz}\n")
    for r, c, v in zip(matrix.row_idx, matrix.col_idx, matrix.vals):
        fh.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")
