"""Structural sparse-matrix generators.

Each generator is deterministic given its ``seed`` and is built from two
orthogonal ingredients:

* a **row-length distribution** (constant, truncated normal, lognormal or
  Zipf — matching Table 2's mu/sigma per matrix), and
* a **column-placement pattern** (exact stencil offsets, randomized band,
  FEM block band with contiguous runs, uniform random, or a hub mixture),
  which controls delta magnitudes and x locality.

All generators are vectorized and chunked over rows so million-row matrices
stay affordable; no Python-level per-entry loops.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..formats.coo import COOMatrix
from ..utils.validation import check_positive

__all__ = [
    "stencil",
    "hub_mixture",
    "banded_random",
    "block_band",
    "random_uniform",
    "power_law",
    "dense",
    "dense_rows",
    "row_lengths_normal",
    "row_lengths_lognormal",
    "row_lengths_zipf",
]

_CHUNK = 65536  # rows per vectorized generation chunk


# ----------------------------------------------------------------------
# Row-length distributions
# ----------------------------------------------------------------------
def row_lengths_normal(
    m: int, mu: float, sigma: float, max_len: int, rng: np.random.Generator
) -> np.ndarray:
    """Truncated-normal row lengths with approximate mean ``mu``."""
    lengths = np.rint(rng.normal(mu, sigma, size=m)).astype(np.int64)
    return np.clip(lengths, 1, max_len)


def row_lengths_lognormal(
    m: int, mu: float, sigma: float, max_len: int, rng: np.random.Generator
) -> np.ndarray:
    """Lognormal row lengths: right-skewed (sigma of the same order as mu)."""
    if mu <= 0:
        raise ValidationError("mu must be positive")
    # Match the first two moments of a lognormal to (mu, sigma).
    var = max(sigma, 1e-9) ** 2
    s2 = np.log(1.0 + var / mu**2)
    loc = np.log(mu) - 0.5 * s2
    lengths = np.rint(rng.lognormal(loc, np.sqrt(s2), size=m)).astype(np.int64)
    return np.clip(lengths, 1, max_len)


def row_lengths_zipf(
    m: int, mu: float, max_len: int, rng: np.random.Generator, alpha: float = 2.0
) -> np.ndarray:
    """Power-law row lengths (circuit / web graphs): heavy upper tail."""
    raw = rng.zipf(alpha, size=m).astype(np.float64)
    raw = np.clip(raw, 1, max_len)
    # Rescale multiplicatively toward the target mean (clipping back to
    # [1, max_len] keeps the heavy tail while bounding a row's width).
    factor = mu / max(raw.mean(), 1e-9)
    return np.clip(np.rint(raw * factor), 1, max_len).astype(np.int64)


# ----------------------------------------------------------------------
# Column-placement engine
# ----------------------------------------------------------------------
def _coo_from_rows(
    rows: np.ndarray, cols: np.ndarray, shape, rng: np.random.Generator
) -> COOMatrix:
    vals = rng.standard_normal(rows.shape[0])
    return COOMatrix(rows, cols, vals, shape)


def _window_sample(
    centers: np.ndarray,
    lengths: np.ndarray,
    domain: int,
    window: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``lengths[i]`` distinct positions near ``centers[i]``.

    Positions live in ``[0, domain)`` inside a window of half-width
    ``window`` around each (clipped) center. Without-replacement sampling
    uses the argsort-of-uniforms trick, vectorized over the chunk.

    Returns ``(sel, positions)`` where ``sel`` indexes the chunk row each
    position belongs to.
    """
    chunk = centers.shape[0]
    if chunk == 0:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    width = int(min(2 * window + 1, domain))
    width = max(width, int(lengths.max()) if lengths.size else 1)
    keys = rng.random((chunk, width))
    perm = np.argsort(keys, axis=1)
    take = np.arange(width)[np.newaxis, :] < lengths[:, np.newaxis]
    sel, j = np.nonzero(take)
    offsets = perm[sel, j]
    ctr = np.clip(centers[sel], window, max(domain - 1 - window, 0))
    lo = np.maximum(ctr - window, 0)
    positions = np.minimum(lo + offsets, domain - 1)
    return sel, positions


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def stencil(
    m: int,
    offsets: Sequence[int],
    seed: int = 0,
    n: int | None = None,
) -> COOMatrix:
    """Exact regular stencil: row ``i`` holds columns ``i + offsets`` (clipped).

    Models grid-based PDE matrices (``mc2depi``, ``epb3``, ``qcd5_4``):
    near-constant row lengths and a fixed delta pattern — including the
    large first delta that caps mc2depi's compressibility in Table 3.
    """
    m = check_positive(m, "m")
    n = m if n is None else check_positive(n, "n")
    offs = np.asarray(sorted(set(int(o) for o in offsets)), dtype=np.int64)
    if offs.size == 0:
        raise ValidationError("at least one stencil offset is required")
    rng = np.random.default_rng(seed)
    rows_parts, cols_parts = [], []
    for r0 in range(0, m, _CHUNK):
        r1 = min(r0 + _CHUNK, m)
        ids = np.arange(r0, r1, dtype=np.int64)
        cols = ids[:, np.newaxis] + offs[np.newaxis, :]
        keep = (cols >= 0) & (cols < n)
        r, j = np.nonzero(keep)
        rows_parts.append(ids[r])
        cols_parts.append(cols[r, j])
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return _coo_from_rows(rows, cols, (m, n), rng)


def banded_random(
    m: int,
    mu: float,
    sigma: float,
    bandwidth: int | None = None,
    seed: int = 0,
    n: int | None = None,
    skewed: bool = False,
) -> COOMatrix:
    """Random distinct columns inside a diagonal band.

    Models unstructured FEM/CFD meshes (``cage12``, ``stomach``, ``torso3``,
    ``xenon2``, ``rma10``, ...): good-but-not-perfect locality, moderate
    delta magnitudes.
    """
    m = check_positive(m, "m")
    n = m if n is None else check_positive(n, "n")
    rng = np.random.default_rng(seed)
    window = bandwidth if bandwidth is not None else max(8, int(4 * mu))
    window = min(window, n)
    max_len = min(n, max(1, int(mu + 6 * max(sigma, 1) + 1)))
    max_len = min(max_len, 2 * window + 1)
    draw = row_lengths_lognormal if skewed else row_lengths_normal
    rows_parts, cols_parts = [], []
    for r0 in range(0, m, _CHUNK):
        r1 = min(r0 + _CHUNK, m)
        ids = np.arange(r0, r1, dtype=np.int64)
        lengths = draw(r1 - r0, mu, sigma, max_len, rng)
        sel, cols = _window_sample(ids, lengths, n, window, rng)
        rows_parts.append(ids[sel])
        cols_parts.append(cols)
    return _coo_from_rows(
        np.concatenate(rows_parts), np.concatenate(cols_parts), (m, n), rng
    )


def block_band(
    m: int,
    mu: float,
    sigma: float,
    run: int = 3,
    bandwidth: int | None = None,
    seed: int = 0,
    aligned: bool = False,
) -> COOMatrix:
    """FEM block band: entries come in contiguous runs of ``run`` columns.

    Models multi-DOF structural matrices (``cant``, ``consph``, ``pdb1HYS``,
    ``shipsec1``, ``pwtk``, ``bcsstk32``): runs of unit deltas make the
    index data extremely compressible (the top of Table 3).

    With ``aligned=True`` groups of ``run`` consecutive rows share the same
    run positions — the dense ``run x run`` blocks a multi-DOF mesh really
    produces, which is what blocked formats (BELLPACK) exploit.
    """
    m = check_positive(m, "m")
    run = check_positive(run, "run")
    rng = np.random.default_rng(seed)
    run_domain = max(m // run, 1)
    window_runs = max(4, int((bandwidth if bandwidth else 6 * mu) // run))
    window_runs = min(window_runs, run_domain)
    max_runs = min(run_domain, 2 * window_runs + 1)
    rows_parts, cols_parts = [], []
    step = run if aligned else 1
    for r0 in range(0, m, _CHUNK):
        r1 = min(r0 + _CHUNK, m)
        if aligned:
            # One run pattern per group of `run` rows, replicated below.
            ids = np.arange(r0, min(r1, m), step, dtype=np.int64)
        else:
            ids = np.arange(r0, r1, dtype=np.int64)
        n_runs = np.clip(
            np.rint(rng.normal(mu / run, max(sigma / run, 0.1), size=ids.shape[0])),
            1,
            max_runs,
        ).astype(np.int64)
        sel, slots = _window_sample(ids // run, n_runs, run_domain, window_runs, rng)
        base_rows = ids[sel]
        cols = (slots[:, np.newaxis] * run + np.arange(run)[np.newaxis, :]).reshape(-1)
        if aligned:
            # For each (group, slot) emit a dense run x run block.
            g = base_rows.shape[0]
            rows = (
                base_rows[:, np.newaxis, np.newaxis]
                + np.arange(run)[np.newaxis, :, np.newaxis]
            )
            rows = np.broadcast_to(rows, (g, run, run)).reshape(-1)
            cols = (
                (slots * run)[:, np.newaxis, np.newaxis]
                + np.arange(run)[np.newaxis, np.newaxis, :]
            )
            cols = np.broadcast_to(cols, (g, run, run)).reshape(-1)
        else:
            rows = np.repeat(base_rows, run)
        keep = (cols < m) & (rows < m)
        rows_parts.append(rows[keep])
        cols_parts.append(cols[keep])
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return _coo_from_rows(rows, cols, (m, m), rng)


def random_uniform(
    m: int,
    n: int,
    mu: float,
    sigma: float,
    seed: int = 0,
) -> COOMatrix:
    """Distinct columns drawn uniformly over the full row width.

    The worst case for x locality; stresses the texture-cache model.
    """
    return banded_random(m, mu, sigma, bandwidth=n, seed=seed, n=n)


def power_law(
    m: int,
    mu: float,
    seed: int = 0,
    alpha: float = 2.0,
    hub_fraction: float = 0.05,
    locality: float = 0.7,
    n: int | None = None,
) -> COOMatrix:
    """Power-law graph matrix: Zipf row lengths, hub columns, mixed locality.

    Models circuits and web graphs (``rajat30``, ``webbase-1M``,
    ``scircuit``, ``gupta2``, ``twotone``): sigma far above mu, a few
    enormous rows, and a blend of near-diagonal and random placement.
    Duplicate coordinates are merged by :class:`COOMatrix`, mimicking the
    multigraph collapse of real web crawls.
    """
    m = check_positive(m, "m")
    n = m if n is None else check_positive(n, "n")
    rng = np.random.default_rng(seed)
    max_len = min(n, max(64, int(50 * mu)))
    lengths = row_lengths_zipf(m, mu, max_len, rng, alpha)
    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    total = rows.shape[0]
    is_local = rng.random(total) < locality
    local_span = max(4, int(3 * mu))
    local_cols = rows + rng.integers(-local_span, local_span + 1, size=total)
    n_hubs = max(1, int(hub_fraction * n))
    hubs = rng.choice(n, size=n_hubs, replace=False)
    random_cols = np.where(
        rng.random(total) < 0.5,
        hubs[rng.integers(0, n_hubs, size=total)],
        rng.integers(0, n, size=total),
    )
    cols = np.where(is_local, local_cols, random_cols)
    cols = np.clip(cols, 0, n - 1)
    return _coo_from_rows(rows, cols, (m, n), rng)


def dense(m: int, n: int, seed: int = 0) -> COOMatrix:
    """Fully dense matrix in COO storage (Bell & Garland's ``dense2``).

    Every row holds all ``n`` columns, so every column delta is exactly 1 —
    the best case for bit-width compression and the canonical control
    workload for the telemetry profiler's roofline attribution.
    """
    m = check_positive(m, "m")
    n = check_positive(n, "n")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(m, dtype=np.int64), n)
    cols = np.tile(np.arange(n, dtype=np.int64), m)
    return _coo_from_rows(rows, cols, (m, n), rng)


def dense_rows(
    m: int,
    n: int,
    mu: float,
    sigma: float,
    seed: int = 0,
) -> COOMatrix:
    """A short, very wide matrix whose rows hold thousands of entries.

    Models constraint matrices like ``rail4284`` (4.3k x 109k, mean row
    length 2633): almost everything lands in the COO part of HYB.
    """
    m = check_positive(m, "m")
    n = check_positive(n, "n")
    rng = np.random.default_rng(seed)
    # rail4284's length distribution is extremely skewed (sigma = 1.6 mu):
    # most rows are short and a few hold tens of thousands of entries, so
    # the Bell-Garland split sends almost everything to the COO part.
    lengths = row_lengths_zipf(m, mu, n, rng, alpha=1.35)
    rows_parts, cols_parts = [], []
    # Full-width without-replacement sampling, a few hundred rows at a time
    # (the permutation matrix is (chunk, n)).
    for r0 in range(0, m, 256):
        r1 = min(r0 + 256, m)
        ids = np.arange(r0, r1, dtype=np.int64)
        lens = lengths[r0:r1]
        keys = rng.random((r1 - r0, n))
        perm = np.argsort(keys, axis=1)
        take = np.arange(n)[np.newaxis, :] < lens[:, np.newaxis]
        sel, j = np.nonzero(take)
        rows_parts.append(ids[sel])
        cols_parts.append(perm[sel, j])
    return _coo_from_rows(
        np.concatenate(rows_parts), np.concatenate(cols_parts), (m, n), rng
    )

def hub_mixture(
    m: int,
    base_mu: float,
    tail_fraction: float,
    tail_mu: float,
    seed: int = 0,
    n: int | None = None,
    locality: float = 0.7,
    hub_fraction: float = 0.02,
    base_sigma_frac: float = 0.5,
) -> COOMatrix:
    """Bimodal circuit/web matrix: short rows plus a sprinkling of huge ones.

    Most rows draw a truncated-normal length around ``base_mu``; a
    ``tail_fraction`` of rows draw lognormal lengths around ``tail_mu``
    (dense supply rails, web hubs). Columns mix near-diagonal locality
    with hub columns. This bimodality — not a smooth Zipf — is what sets
    the Bell-Garland HYB split of matrices like rajat30 or gupta2: the
    split column k tracks the *base* population while the tail rows
    overflow into the COO part.
    """
    m = check_positive(m, "m")
    n = m if n is None else check_positive(n, "n")
    rng = np.random.default_rng(seed)
    lengths = row_lengths_normal(
        m, base_mu, max(base_sigma_frac * base_mu, 0.5),
        min(n, max(2, int(4 * base_mu + 8))), rng,
    )
    n_tail = max(1, int(round(tail_fraction * m)))
    tail_rows = rng.choice(m, size=n_tail, replace=False)
    lengths[tail_rows] = row_lengths_lognormal(
        n_tail, tail_mu, 1.5 * tail_mu, n, rng
    )

    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    total = rows.shape[0]
    is_local = rng.random(total) < locality
    local_span = max(4, int(3 * base_mu))
    local_cols = rows + rng.integers(-local_span, local_span + 1, size=total)
    n_hubs = max(1, int(hub_fraction * n))
    hubs = rng.choice(n, size=n_hubs, replace=False)
    random_cols = np.where(
        rng.random(total) < 0.4,
        hubs[rng.integers(0, n_hubs, size=total)],
        rng.integers(0, n, size=total),
    )
    cols = np.clip(np.where(is_local, local_cols, random_cols), 0, n - 1)
    # Tail rows sample distinct columns (a duplicate-merged 5000-entry row
    # would lose much of its mass); redo them without replacement.
    keep = ~np.isin(rows, tail_rows)
    rows_list = [rows[keep]]
    cols_list = [cols[keep]]
    for r in tail_rows:
        k = int(lengths[r])
        chosen = rng.choice(n, size=min(k, n), replace=False)
        rows_list.append(np.full(chosen.shape[0], r, dtype=np.int64))
        cols_list.append(np.sort(chosen))
    return _coo_from_rows(
        np.concatenate(rows_list), np.concatenate(cols_list), (m, n), rng
    )
