"""The named matrix suite of paper Table 2 (synthetic stand-ins).

Each :class:`MatrixSpec` records the paper's published statistics
(dimensions, nnz, mean/std of row length) plus the structural family and
parameters used to generate a synthetic stand-in. ``scale`` shrinks the
dimensions (preserving the row-length distribution) so CI and quick
benchmark runs stay fast; ``scale=1.0`` reproduces full Table 2 sizes.

Family/parameter choices are driven by what the paper's experiments are
sensitive to: the row-length spread (ELL padding, HYB split, Table 4) and
the delta-magnitude structure (compressibility, Tables 3/5). Bandwidth
parameters were tuned once against Table 3's published space savings.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ValidationError
from ..formats.coo import COOMatrix
from ..telemetry.tracer import span as _span
from . import generators as g

__all__ = ["MatrixSpec", "TABLE2", "generate", "test_set_1", "test_set_2"]


@dataclass(frozen=True)
class MatrixSpec:
    """One row of Table 2 plus its generator recipe."""

    name: str
    rows: int
    cols: int
    nnz: int
    mu: float  #: mean row length (Table 2)
    sigma: float  #: std of row lengths (Table 2)
    test_set: int  #: 1 = BRO-ELL-representable, 2 = BRO-HYB
    family: str
    params: Dict = field(default_factory=dict)

    def scaled_shape(self, scale: float) -> Tuple[int, int]:
        """Dimensions after applying ``scale`` (floored at 256 rows)."""
        if not 0 < scale <= 1:
            raise ValidationError(f"scale must be in (0, 1], got {scale}")
        m = max(256, int(round(self.rows * scale)))
        n = max(256, int(round(self.cols * scale)))
        return m, n


def _seed(name: str) -> int:
    """Stable per-matrix seed derived from the name."""
    return zlib.crc32(name.encode()) & 0x7FFFFFFF


def _grid_offsets_2d(m: int) -> List[int]:
    """5-point-minus-center stencil on a sqrt(m) grid (mc2depi)."""
    side = max(2, int(round(np.sqrt(m))))
    return [-side, -1, 1, side]


def _grid_offsets_3d(m: int) -> List[int]:
    """3-D 7-point-minus-center stencil (epb3-like, mean ~5.5)."""
    side = max(2, int(round(m ** (1.0 / 3.0))))
    return [-side * side, -side, -1, 1, side, side * side]


def _near_band_offsets(m: int) -> List[int]:
    """Tight 6-point band stencil (epb3-like: one symbol per row stream)."""
    return [-3, -2, -1, 1, 2, 3]


def _qcd_offsets(m: int) -> List[int]:
    """Lattice-QCD-like pattern: 13 bases x runs of 3 = 39 per row."""
    side = max(2, int(round((m / 3.0) ** 0.25)))
    bases = [0]
    for stride in (3, 3 * side, 3 * side**2, 3 * side**3):
        bases.extend([stride, -stride])
    for stride in (6 * side, 6 * side**2):
        bases.extend([stride, -stride])
    offsets: List[int] = []
    for b in bases:  # 13 bases
        offsets.extend([b, b + 1, b + 2])
    return offsets


TABLE2: Dict[str, MatrixSpec] = {
    spec.name: spec
    for spec in [
        # ----------------------- Test Set 1 ---------------------------
        # dense2 is Bell & Garland's fully-dense control matrix; the paper
        # runs it through the same pipeline as the sparse suite, and the
        # telemetry profiler uses it as the canonical best-case workload.
        MatrixSpec("dense2", 2_000, 2_000, 4_000_000, 2000.0, 0.0, 1,
                   "dense", {}),
        MatrixSpec("cage12", 130_000, 130_000, 2_032_536, 15.6, 4.7, 1,
                   "band", {"bandwidth": 480}),
        MatrixSpec("cant", 62_000, 62_000, 4_007_383, 64.2, 14.1, 1,
                   "block_band", {"run": 3, "bandwidth": 9500}),
        MatrixSpec("consph", 83_000, 83_000, 6_010_480, 72.1, 19.1, 1,
                   "block_band", {"run": 3, "bandwidth": 16000}),
        MatrixSpec("e40r5000", 17_000, 17_000, 553_956, 32.1, 15.5, 1,
                   "block_band", {"run": 3, "bandwidth": 100}),
        MatrixSpec("epb3", 85_000, 85_000, 463_625, 5.5, 0.5, 1,
                   "stencil", {"offsets_fn": _near_band_offsets}),
        MatrixSpec("lhr71", 70_000, 70_000, 1_528_092, 21.7, 26.3, 1,
                   "block_band", {"run": 3, "bandwidth": 200}),
        MatrixSpec("mc2depi", 526_000, 526_000, 2_100_225, 4.0, 0.1, 1,
                   "stencil", {"offsets_fn": _grid_offsets_2d}),
        MatrixSpec("pdb1HYS", 36_000, 36_000, 4_344_765, 119.3, 31.9, 1,
                   "block_band", {"run": 4, "bandwidth": 4400}),
        MatrixSpec("qcd5_4", 49_000, 49_000, 1_916_928, 39.0, 0.0, 1,
                   "stencil", {"offsets_fn": _qcd_offsets}),
        MatrixSpec("rim", 23_000, 23_000, 1_014_951, 45.0, 26.6, 1,
                   "block_band", {"run": 3, "bandwidth": 150}),
        MatrixSpec("rma10", 47_000, 47_000, 2_374_001, 50.7, 27.8, 1,
                   "block_band", {"run": 3, "bandwidth": 450}),
        MatrixSpec("shipsec1", 141_000, 141_000, 7_813_404, 55.5, 11.1, 1,
                   "block_band", {"run": 3, "bandwidth": 90}),
        MatrixSpec("stomach", 213_000, 213_000, 3_021_648, 14.2, 5.9, 1,
                   "band", {"bandwidth": 3200}),
        MatrixSpec("torso3", 259_000, 259_000, 4_429_042, 17.1, 4.4, 1,
                   "band", {"bandwidth": 580}),
        MatrixSpec("venkat01", 62_000, 62_000, 1_717_792, 27.5, 2.3, 1,
                   "block_band", {"run": 4, "bandwidth": 300}),
        MatrixSpec("xenon2", 157_000, 157_000, 3_866_688, 24.6, 4.1, 1,
                   "band", {"bandwidth": 1900}),
        # ----------------------- Test Set 2 ---------------------------
        MatrixSpec("bcsstk32", 45_000, 45_000, 2_014_701, 45.2, 15.5, 2,
                   "block_band", {"run": 3, "bandwidth": 2500}),
        MatrixSpec("cop20k_A", 121_000, 121_000, 2_624_331, 21.7, 13.8, 2,
                   "band_skewed", {"bandwidth": 2000}),
        MatrixSpec("ct20stif", 52_000, 52_000, 2_698_463, 51.6, 17.0, 2,
                   "block_band", {"run": 3, "bandwidth": 3000}),
        MatrixSpec("gupta2", 62_000, 62_000, 4_248_286, 68.5, 356.0, 2,
                   "hub_mixture", {"base_mu": 35.0, "tail_fraction": 0.005,
                                   "tail_mu": 6800.0, "locality": 0.5}),
        MatrixSpec("hvdc2", 190_000, 190_000, 1_347_273, 7.1, 3.8, 2,
                   "band_skewed", {"bandwidth": 700}),
        MatrixSpec("mac_econ", 207_000, 207_000, 1_273_389, 6.2, 4.4, 2,
                   "band_skewed", {"bandwidth": 1500}),
        MatrixSpec("ohne2", 181_000, 181_000, 11_063_545, 61.0, 21.1, 2,
                   "block_band", {"run": 3, "bandwidth": 5000}),
        MatrixSpec("pwtk", 218_000, 218_000, 11_634_424, 53.4, 4.7, 2,
                   "block_band", {"run": 3, "bandwidth": 250}),
        MatrixSpec("rail4284", 4_300, 109_000, 11_279_748, 2633.0, 4209.0, 2,
                   "dense_rows", {}),
        MatrixSpec("rajat30", 644_000, 644_000, 6_175_377, 9.6, 785.0, 2,
                   "hub_mixture", {"base_mu": 6.8, "tail_fraction": 0.0004,
                                   "tail_mu": 7200.0, "locality": 0.7}),
        MatrixSpec("scircuit", 171_000, 171_000, 958_936, 5.6, 4.4, 2,
                   "hub_mixture", {"base_mu": 5.2, "tail_fraction": 0.0025,
                                   "tail_mu": 230.0, "locality": 0.8}),
        MatrixSpec("sme3Da", 13_000, 13_000, 874_887, 70.0, 34.9, 2,
                   "block_band", {"run": 3, "bandwidth": 2200}),
        MatrixSpec("twotone", 121_000, 121_000, 1_224_224, 10.1, 15.0, 2,
                   "hub_mixture", {"base_mu": 7.0, "tail_fraction": 0.004,
                                   "tail_mu": 700.0, "locality": 0.75}),
        MatrixSpec("webbase-1M", 1_000_000, 1_000_000, 3_105_536, 3.1, 25.3, 2,
                   "hub_mixture", {"base_mu": 2.3, "tail_fraction": 0.0012,
                                   "tail_mu": 550.0, "locality": 0.5,
                                   "hub_fraction": 0.01}),
    ]
}


def test_set_1() -> List[str]:
    """Names of Test Set 1 (BRO-ELL-representable matrices)."""
    return [s.name for s in TABLE2.values() if s.test_set == 1]


def test_set_2() -> List[str]:
    """Names of Test Set 2 (BRO-HYB matrices)."""
    return [s.name for s in TABLE2.values() if s.test_set == 2]


def generate(name: str, scale: float = 1.0, seed: int | None = None) -> COOMatrix:
    """Generate the synthetic stand-in for a Table 2 matrix.

    Parameters
    ----------
    name:
        A Table 2 matrix name (see :data:`TABLE2`).
    scale:
        Dimension scale factor in ``(0, 1]``; nnz scales proportionally
        because the row-length distribution is preserved.
    seed:
        Override the stable per-name seed (for sensitivity studies).
    """
    try:
        spec = TABLE2[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown matrix {name!r}; available: {sorted(TABLE2)}"
        ) from exc
    with _span("matrix.generate", "pipeline", matrix=name, scale=scale):
        return _generate(spec, scale, seed)


def _generate(spec: MatrixSpec, scale: float, seed: int | None) -> COOMatrix:
    name = spec.name
    m, n = spec.scaled_shape(scale)
    s = _seed(name) if seed is None else int(seed)
    p = dict(spec.params)

    def fixed_bandwidth(default: int) -> int:
        # Bandwidth is a structural property (delta magnitudes do not
        # shrink when a mesh is coarsened), so it is NOT scaled; it is
        # only clipped to the scaled matrix width.
        return max(8, min(int(p.get("bandwidth", default)), n))

    if spec.family == "dense":
        return g.dense(m, n, seed=s)
    if spec.family == "stencil":
        return g.stencil(m, p["offsets_fn"](m), seed=s, n=n)
    if spec.family == "band":
        return g.banded_random(
            m, spec.mu, spec.sigma, bandwidth=fixed_bandwidth(int(4 * spec.mu)),
            seed=s, n=n,
        )
    if spec.family == "band_skewed":
        return g.banded_random(
            m, spec.mu, spec.sigma, bandwidth=fixed_bandwidth(int(4 * spec.mu)),
            seed=s, n=n, skewed=True,
        )
    if spec.family == "block_band":
        return g.block_band(
            m, spec.mu, spec.sigma, run=p.get("run", 3),
            bandwidth=fixed_bandwidth(int(6 * spec.mu)), seed=s,
        )
    if spec.family == "hub_mixture":
        # A scaled-down matrix cannot hold a full-size tail row; keep the
        # *tail nnz mass* invariant by clipping tail_mu to the width and
        # raising tail_fraction correspondingly.
        tail_mu = float(p["tail_mu"])
        cap = max(32.0, 0.9 * n)
        tail_fraction = float(p["tail_fraction"]) * tail_mu / min(tail_mu, cap)
        return g.hub_mixture(
            m, p["base_mu"], min(tail_fraction, 0.2), min(tail_mu, cap),
            seed=s, n=n,
            locality=p.get("locality", 0.7),
            hub_fraction=p.get("hub_fraction", 0.02),
        )
    if spec.family == "power_law":
        # mu_factor oversamples entry counts to compensate for the
        # duplicate-coordinate merging inherent to hub-heavy placement.
        return g.power_law(
            m, spec.mu * p.get("mu_factor", 1.0), seed=s, alpha=p.get("alpha", 2.0),
            locality=p.get("locality", 0.7),
            hub_fraction=p.get("hub_fraction", 0.05), n=n,
        )
    if spec.family == "dense_rows":
        return g.dense_rows(m, n, max(1.0, spec.mu * scale),
                            max(1.0, spec.sigma * scale), seed=s)
    raise ValidationError(f"unknown family {spec.family!r}")  # pragma: no cover
