"""On-disk caching of generated suite matrices (`.npz`).

Full-scale Table 2 matrices take seconds to minutes to generate; caching
them makes repeated full-scale benchmark runs cheap. The cache key is
``(name, scale, seed)``; files are ordinary NumPy archives so they can be
shipped between machines.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ValidationError
from ..formats.coo import COOMatrix
from .suite import generate

__all__ = ["save_matrix", "load_matrix", "generate_cached", "default_cache_dir"]

_ENV_VAR = "REPRO_MATRIX_CACHE"


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_MATRIX_CACHE`` or ``~/.cache/repro``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def save_matrix(coo: COOMatrix, path: Union[str, os.PathLike]) -> None:
    """Write a COO matrix to an ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        row=coo.row_idx,
        col=coo.col_idx,
        vals=coo.vals,
        shape=np.array(coo.shape, dtype=np.int64),
    )


def load_matrix(path: Union[str, os.PathLike]) -> COOMatrix:
    """Read a COO matrix from an ``.npz`` archive."""
    with np.load(path) as data:
        required = {"row", "col", "vals", "shape"}
        if not required <= set(data.files):
            raise ValidationError(
                f"{path} is not a repro matrix archive (missing "
                f"{sorted(required - set(data.files))})"
            )
        shape = tuple(int(v) for v in data["shape"])
        return COOMatrix(data["row"], data["col"], data["vals"], shape)


def generate_cached(
    name: str,
    scale: float = 1.0,
    seed: int | None = None,
    cache_dir: Union[str, os.PathLike, None] = None,
) -> COOMatrix:
    """Generate a suite matrix, reusing an on-disk copy when present."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    tag = f"{name}_s{scale:g}" + (f"_r{seed}" if seed is not None else "")
    path = directory / f"{tag}.npz"
    if path.exists():
        return load_matrix(path)
    coo = generate(name, scale=scale, seed=seed)
    save_matrix(coo, path)
    return coo
