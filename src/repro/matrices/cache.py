"""On-disk caching of generated suite matrices (`.npz`).

Full-scale Table 2 matrices take seconds to minutes to generate; caching
them makes repeated full-scale benchmark runs cheap. The cache key is
``(name, scale, seed)``; files are ordinary NumPy archives so they can be
shipped between machines.

Robustness
----------
Writes are *atomic*: the archive is staged to a temp file in the target
directory, fsynced, and moved into place with :func:`os.replace`, so a
crash mid-write can never leave a half-written archive under the cache
key. Each archive carries per-field CRC32 checksums; :func:`load_matrix`
verifies them (when present), validates dtypes and index bounds, and
raises :class:`~repro.errors.ValidationError` naming the offending field
instead of constructing an invalid :class:`COOMatrix` from garbage.
:func:`generate_cached` treats a corrupt archive as a cache miss: it
deletes the file and regenerates the matrix.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ReproError, ValidationError
from ..formats.coo import COOMatrix
from .suite import generate

__all__ = ["save_matrix", "load_matrix", "generate_cached", "default_cache_dir"]

_ENV_VAR = "REPRO_MATRIX_CACHE"

#: Archive fields that carry matrix data, in the order their CRCs are stored.
_DATA_FIELDS = ("row", "col", "vals", "shape")


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_MATRIX_CACHE`` or ``~/.cache/repro``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _field_crc(arr: np.ndarray) -> int:
    arr = np.ascontiguousarray(arr)
    tag = f"{arr.dtype.str}:{arr.shape}".encode("ascii")
    return zlib.crc32(arr.tobytes(), zlib.crc32(tag)) & 0xFFFFFFFF


def save_matrix(coo: COOMatrix, path: Union[str, os.PathLike]) -> None:
    """Atomically write a COO matrix to an ``.npz`` archive.

    The archive lands under ``path`` either complete (checksummed) or not
    at all — a crash mid-write leaves only a stray ``*.tmp`` staging file
    that the next write cleans over.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        "row": coo.row_idx,
        "col": coo.col_idx,
        "vals": coo.vals,
        "shape": np.array(coo.shape, dtype=np.int64),
    }
    crc = np.array([_field_crc(arrays[name]) for name in _DATA_FIELDS], dtype=np.uint32)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, crc=crc, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _check_field(condition: bool, field: str, why: str, path) -> None:
    if not condition:
        raise ValidationError(f"{path}: archive field {field!r} {why}")


def load_matrix(path: Union[str, os.PathLike]) -> COOMatrix:
    """Read and validate a COO matrix from an ``.npz`` archive.

    Raises
    ------
    ValidationError
        When the file is not a readable archive, a required field is
        missing, a checksum mismatches, a dtype is wrong, or an index
        falls outside the stored shape — always naming the offending field.
    """
    try:
        archive = np.load(path)
    except (OSError, ValueError, EOFError, zlib.error, zipfile.BadZipFile) as exc:
        raise ValidationError(f"{path} is not a readable .npz archive: {exc}") from exc
    with archive as data:
        required = set(_DATA_FIELDS)
        if not required <= set(data.files):
            raise ValidationError(
                f"{path} is not a repro matrix archive (missing "
                f"{sorted(required - set(data.files))})"
            )
        try:
            arrays = {name: data[name] for name in _DATA_FIELDS}
            crc = data["crc"] if "crc" in data.files else None
        except (OSError, ValueError, EOFError, zlib.error, zipfile.BadZipFile) as exc:
            raise ValidationError(f"{path}: archive payload is corrupt: {exc}") from exc

    if crc is not None:
        _check_field(crc.shape == (len(_DATA_FIELDS),), "crc", "has the wrong length", path)
        for i, name in enumerate(_DATA_FIELDS):
            if _field_crc(arrays[name]) != int(crc[i]):
                raise ValidationError(
                    f"{path}: archive field {name!r} failed its CRC32 check "
                    "(corrupt or tampered archive)"
                )

    row, col, vals, shape = (arrays[name] for name in _DATA_FIELDS)
    _check_field(
        shape.ndim == 1 and shape.shape[0] == 2, "shape", "must hold two entries", path
    )
    _check_field(
        np.issubdtype(shape.dtype, np.integer), "shape", "must be integer", path
    )
    m, n = int(shape[0]), int(shape[1])
    _check_field(m > 0 and n > 0, "shape", f"must be positive, got ({m}, {n})", path)
    _check_field(
        row.ndim == 1 and np.issubdtype(row.dtype, np.integer),
        "row", "must be a 1-D integer array", path,
    )
    _check_field(
        col.ndim == 1 and np.issubdtype(col.dtype, np.integer),
        "col", "must be a 1-D integer array", path,
    )
    _check_field(
        vals.ndim == 1 and np.issubdtype(vals.dtype, np.floating),
        "vals", "must be a 1-D floating array", path,
    )
    _check_field(
        row.shape == col.shape == vals.shape,
        "row/col/vals", "must have equal lengths", path,
    )
    if row.size:
        _check_field(
            int(row.min()) >= 0 and int(row.max()) < m,
            "row", f"holds indices outside [0, {m})", path,
        )
        _check_field(
            int(col.min()) >= 0 and int(col.max()) < n,
            "col", f"holds indices outside [0, {n})", path,
        )
        _check_field(
            bool(np.all(np.isfinite(vals))), "vals", "holds non-finite entries", path
        )
    return COOMatrix(row, col, vals, (m, n))


def generate_cached(
    name: str,
    scale: float = 1.0,
    seed: int | None = None,
    cache_dir: Union[str, os.PathLike, None] = None,
) -> COOMatrix:
    """Generate a suite matrix, reusing an on-disk copy when present.

    A corrupt cached archive (failed checksum, truncation, garbage) is
    deleted and regenerated instead of propagating the error — the cache
    is a performance layer, never a source of truth.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    tag = f"{name}_s{scale:g}" + (f"_r{seed}" if seed is not None else "")
    path = directory / f"{tag}.npz"
    if path.exists():
        try:
            return load_matrix(path)
        except ReproError:
            try:
                path.unlink()
            except OSError:
                pass
    coo = generate(name, scale=scale, seed=seed)
    save_matrix(coo, path)
    return coo
