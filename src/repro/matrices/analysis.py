"""Matrix statistics: Table 2 columns plus compressibility indicators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.coo import COOMatrix
from ..utils.bits import bit_width_array

__all__ = ["MatrixStats", "analyze"]


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of one sparse matrix."""

    name: str
    rows: int
    cols: int
    nnz: int
    mu: float  #: mean row length
    sigma: float  #: std of row lengths
    max_row: int
    min_row: int
    mean_delta_bits: float  #: mean Gamma(delta) over valid entries
    mean_col_span: float  #: mean (max col - min col) per non-empty row

    def row(self) -> str:
        """One formatted Table 2-style report line."""
        return (
            f"{self.name:<12s} {self.rows:>9d} x {self.cols:<9d} "
            f"{self.nnz:>10d} {self.mu:>8.1f} {self.sigma:>8.1f}"
        )


def analyze(coo: COOMatrix, name: str = "matrix") -> MatrixStats:
    """Compute :class:`MatrixStats` for a matrix."""
    lengths = coo.row_lengths()
    nonempty = lengths > 0
    mu = float(lengths.mean()) if lengths.size else 0.0
    sigma = float(lengths.std()) if lengths.size else 0.0

    mean_delta_bits = 0.0
    mean_span = 0.0
    if coo.nnz:
        # Delta statistics straight off the CSR arrays — materializing an
        # (m, max_row_length) ELLPACK block would explode on matrices with
        # one enormous row (rajat30, rail4284).
        cols = coo.col_idx.astype(np.int64)
        starts = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        deltas = np.empty(coo.nnz, dtype=np.int64)
        deltas[0] = cols[0] + 1
        deltas[1:] = cols[1:] - cols[:-1]
        first_pos = starts[:-1][nonempty]
        deltas[first_pos] = cols[first_pos] + 1  # c_{i,-1} = 0 convention
        mean_delta_bits = float(bit_width_array(deltas).mean())
        last_pos = starts[1:][nonempty] - 1
        mean_span = float((cols[last_pos] - cols[first_pos]).mean())
    return MatrixStats(
        name=name,
        rows=coo.shape[0],
        cols=coo.shape[1],
        nnz=coo.nnz,
        mu=mu,
        sigma=sigma,
        max_row=int(lengths.max()) if lengths.size else 0,
        min_row=int(lengths.min()) if lengths.size else 0,
        mean_delta_bits=mean_delta_bits,
        mean_col_span=mean_span,
    )
