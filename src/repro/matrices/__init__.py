"""Synthetic matrix suite standing in for the University of Florida set.

The paper evaluates on 30 UF matrices (Table 2). Without network access we
generate synthetic stand-ins that reproduce, per matrix: the dimensions,
non-zero count, mean/std of row lengths, and — critically for this paper —
the *index structure* of the matrix's family (stencil offsets, FEM block
bands, circuit hubs, power-law tails, ...), because index structure is what
determines delta magnitudes (compressibility, Table 3) and x-vector
locality (texture-cache behaviour).

* :mod:`~repro.matrices.generators` — structural family generators;
* :mod:`~repro.matrices.suite` — the named Table 2 registry;
* :mod:`~repro.matrices.analysis` — row-length/locality statistics;
* :mod:`~repro.matrices.io` — MatrixMarket reader/writer.
"""

from .analysis import MatrixStats, analyze
from .cache import generate_cached, load_matrix, save_matrix
from .generators import (
    banded_random,
    block_band,
    dense_rows,
    power_law,
    random_uniform,
    stencil,
)
from .io import read_matrix_market, write_matrix_market
from .suite import TABLE2, MatrixSpec, generate, test_set_1, test_set_2

__all__ = [
    "MatrixStats",
    "analyze",
    "stencil",
    "banded_random",
    "block_band",
    "random_uniform",
    "power_law",
    "dense_rows",
    "TABLE2",
    "MatrixSpec",
    "generate",
    "generate_cached",
    "save_matrix",
    "load_matrix",
    "test_set_1",
    "test_set_2",
    "read_matrix_market",
    "write_matrix_market",
]
