"""CRC32 integrity headers for stored sparse-matrix containers.

A BRO container trades redundancy for bandwidth: one flipped bit in a
packed column-delta stream silently shifts every subsequent index of that
row slice. :func:`seal` computes a CRC32 tag per device array (the packed
symbol stream, its slice pointers, the ``bit_alloc`` tables, values and
per-row metadata) plus one tag over the scalar metadata, and attaches the
resulting :class:`IntegrityHeader` to the matrix. :func:`verify_integrity`
recomputes every tag and raises :class:`~repro.errors.IntegrityError`
naming the corrupted fields on any mismatch.

Headers survive :func:`copy.deepcopy` (the fault-injection toolkit relies
on that: a corrupted deep copy still carries the pristine header, so the
corruption is detectable).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from .. import registry as _registry
from ..core.bro_coo import BROCOOMatrix
from ..core.bro_ell import BROELLMatrix
from ..core.bro_hyb import BROHYBMatrix
from ..core.bro_sell import BROSELLMatrix
from ..errors import IntegrityError
from ..formats.base import SparseFormat
from ..formats.cmrs import CMRSMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.sell_c_sigma import SELLCSigmaMatrix
from ..telemetry.tracer import span as _span

__all__ = [
    "array_crc",
    "IntegrityHeader",
    "compute_header",
    "seal",
    "is_sealed",
    "get_header",
    "attach_header",
    "verify_integrity",
]

_HEADER_ATTR = "_integrity_header"


def array_crc(arr: np.ndarray) -> int:
    """CRC32 of an array's contents, dtype and shape.

    Folding the dtype string and shape into the digest means a truncated or
    reinterpreted array never collides with its original even when the raw
    bytes happen to match a prefix.
    """
    arr = np.ascontiguousarray(arr)
    tag = f"{arr.dtype.str}:{arr.shape}".encode("ascii")
    return zlib.crc32(arr.tobytes(), zlib.crc32(tag)) & 0xFFFFFFFF


def _meta_crc(meta: Tuple) -> int:
    return zlib.crc32(repr(meta).encode("ascii")) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Per-format field extraction — bound into the capability registry
# ---------------------------------------------------------------------------

_Extractor = Callable[[SparseFormat], Tuple[Dict[str, np.ndarray], Tuple]]


def _register(name: str) -> Callable[[_Extractor], _Extractor]:
    def deco(fn: _Extractor) -> _Extractor:
        _registry.bind_integrity_fields(name, fn)
        return fn

    return deco


@_register("bro_ell")
def _fields_bro_ell(m: BROELLMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {
        "stream": m.stream.data,
        "slice_ptr": m.stream.slice_ptr,
        "vals": m._vals,
        "row_lengths": m.row_lengths,
        "num_col": m.num_col,
        "slice_edges": m.slice_edges,
    }
    for i, ba in enumerate(m.bit_allocs):
        fields[f"bit_alloc[{i}]"] = ba
    return fields, ("bro_ell", m.shape, m.h, m.sym_len)


@_register("bro_coo")
def _fields_bro_coo(m: BROCOOMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {
        "stream": m.stream.data,
        "slice_ptr": m.stream.slice_ptr,
        "bit_alloc": m.bit_alloc,
        "col_idx": m.col_idx,
        "vals": m.vals,
    }
    meta = ("bro_coo", m.shape, m.nnz, m.warp_size, m.interval_size, m.stream.sym_len)
    return fields, meta


@_register("bro_hyb")
def _fields_bro_hyb(m: BROHYBMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    ell_fields, ell_meta = _fields_bro_ell(m.ell)
    coo_fields, coo_meta = _fields_bro_coo(m.coo)
    fields = {f"ell.{k}": v for k, v in ell_fields.items()}
    fields.update({f"coo.{k}": v for k, v in coo_fields.items()})
    return fields, ("bro_hyb", m.shape, ell_meta, coo_meta)


@_register("bro_sell")
def _fields_bro_sell(m: BROSELLMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {
        "stream": m.stream.data,
        "slice_ptr": m.stream.slice_ptr,
        "vals": m._vals,
        "row_ids": m.row_ids,
        "row_lengths": m.row_lengths,
        "num_col": m.num_col,
        "chunk_edges": m.chunk_edges,
    }
    for i, ba in enumerate(m.bit_allocs):
        fields[f"bit_alloc[{i}]"] = ba
    return fields, ("bro_sell", m.shape, m.c, m.sigma, m.sym_len)


@_register("sell_c_sigma")
def _fields_sell(m: SELLCSigmaMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {
        "col_idx": m._col_idx,
        "vals": m._vals,
        "row_ids": m.row_ids,
        "row_lengths": m.row_lengths,
        "num_col": m.num_col,
        "chunk_edges": m.chunk_edges,
    }
    return fields, ("sell_c_sigma", m.shape, m.c, m.sigma)


@_register("cmrs")
def _fields_cmrs(m: CMRSMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {
        "strip_ptr": m.strip_ptr,
        "col_idx": m.col_idx,
        "row_in_strip": m.row_in_strip,
        "vals": m.vals,
    }
    return fields, ("cmrs", m.shape, m.height)


@_register("csr")
def _fields_csr(m: CSRMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {"indptr": m.indptr, "indices": m.indices, "vals": m.vals}
    return fields, ("csr", m.shape)


@_register("coo")
def _fields_coo(m: COOMatrix) -> Tuple[Dict[str, np.ndarray], Tuple]:
    fields = {"row_idx": m.row_idx, "col_idx": m.col_idx, "vals": m.vals}
    return fields, ("coo", m.shape)


def _fields_generic(m: SparseFormat) -> Tuple[Dict[str, np.ndarray], Tuple]:
    # Slow path for formats without a dedicated extractor: checksum the
    # canonical COO projection. Any corruption that changes the logical
    # matrix is caught; layout-only corruption needs a dedicated extractor.
    coo = m.to_coo()
    fields = {"coo.row_idx": coo.row_idx, "coo.col_idx": coo.col_idx, "coo.vals": coo.vals}
    return fields, (m.format_name, m.shape, m.nnz)


def _extract(matrix: SparseFormat) -> Tuple[Dict[str, np.ndarray], Tuple]:
    extractor = _registry.integrity_fields_for(matrix.format_name)
    if extractor is None:
        extractor = _fields_generic
    return extractor(matrix)


# ---------------------------------------------------------------------------
# Header
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntegrityHeader:
    """CRC32 tags over every device array of one stored matrix."""

    format_name: str
    field_crcs: Mapping[str, int]
    meta_crc: int

    def mismatches(self, matrix: SparseFormat) -> Tuple[str, ...]:
        """Names of fields whose current contents disagree with the header."""
        if matrix.format_name != self.format_name:
            return ("format_name",)
        fields, meta = _extract(matrix)
        bad = []
        if set(fields) != set(self.field_crcs):
            bad.extend(sorted(set(fields) ^ set(self.field_crcs)))
        for name in sorted(set(fields) & set(self.field_crcs)):
            if array_crc(fields[name]) != self.field_crcs[name]:
                bad.append(name)
        if _meta_crc(meta) != self.meta_crc:
            bad.append("metadata")
        return tuple(bad)

    def verify(self, matrix: SparseFormat) -> None:
        """Raise :class:`IntegrityError` naming every corrupted field."""
        bad = self.mismatches(matrix)
        if bad:
            raise IntegrityError(
                f"{self.format_name} container failed checksum verification; "
                f"corrupted fields: {', '.join(bad)}",
                fields=bad,
            )


def compute_header(matrix: SparseFormat) -> IntegrityHeader:
    """Compute (but do not attach) the CRC32 header of a stored matrix."""
    fields, meta = _extract(matrix)
    crcs = {name: array_crc(arr) for name, arr in fields.items()}
    return IntegrityHeader(matrix.format_name, crcs, _meta_crc(meta))


def seal(matrix: SparseFormat) -> SparseFormat:
    """Attach a freshly computed integrity header to ``matrix`` and return it."""
    with _span("integrity.seal", "integrity", format=matrix.format_name):
        object.__setattr__(matrix, _HEADER_ATTR, compute_header(matrix))
    return matrix


def is_sealed(matrix: SparseFormat) -> bool:
    """Whether ``matrix`` carries an integrity header."""
    return getattr(matrix, _HEADER_ATTR, None) is not None


def get_header(matrix: SparseFormat) -> IntegrityHeader | None:
    """The attached header, or ``None`` when the matrix is unsealed."""
    return getattr(matrix, _HEADER_ATTR, None)


def attach_header(matrix: SparseFormat, header: IntegrityHeader) -> SparseFormat:
    """Attach a previously computed header without recomputing it.

    Used by the ``.brx`` loader (:mod:`repro.serialize`) to restore the
    seal a container carried when it was saved — the stored CRCs keep
    guarding against on-disk or in-flight corruption precisely because
    they are *not* recomputed from the loaded bytes.
    """
    object.__setattr__(matrix, _HEADER_ATTR, header)
    return matrix


def verify_integrity(matrix: SparseFormat) -> IntegrityHeader:
    """Verify a sealed matrix against its header.

    Raises
    ------
    IntegrityError
        When the matrix is unsealed or any field's checksum mismatches.
    """
    header = get_header(matrix)
    if header is None:
        raise IntegrityError(
            f"{matrix.format_name} matrix carries no integrity header; "
            "seal() it before requesting checksum verification"
        )
    with _span("verify.checksum", "integrity", format=matrix.format_name):
        header.verify(matrix)
    return header
