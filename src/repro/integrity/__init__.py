"""End-to-end integrity layer: checksums, validators, faults, campaigns.

The BRO formats trade redundancy for bandwidth, so a single flipped bit in
a packed column-delta stream silently corrupts every subsequent index of
that row slice. This package closes that hole end to end:

* :mod:`~repro.integrity.checksums` — CRC32 headers over every device
  array of a container (:func:`seal` / :func:`verify_integrity`);
* :mod:`~repro.integrity.validators` — fast structural validators that
  need no prior seal (:func:`validate_structure`);
* :mod:`~repro.integrity.faults` — deterministic fault injectors for
  packed streams, widths, metadata, values and on-disk archives;
* :mod:`~repro.integrity.campaign` — the seeded campaign runner proving
  the *zero silent corruption* contract;
* :mod:`~repro.integrity.counters` — per-process detection/fallback
  counters surfaced on every verified :class:`~repro.kernels.base.SpMVResult`.
"""

from .campaign import (
    DEFAULT_FORMATS,
    CampaignReport,
    FaultRecord,
    build_campaign_matrix,
    run_campaign,
)
from .checksums import (
    IntegrityHeader,
    array_crc,
    compute_header,
    get_header,
    is_sealed,
    seal,
    verify_integrity,
)
from .counters import COUNTERS, IntegrityCounters, IntegritySnapshot
from .faults import (
    ARCHIVE_FAULT_KINDS,
    FaultSpec,
    InjectedFault,
    corrupt_archive,
    fault_kinds,
    inject_fault,
)
from .validators import structural_validators, validate_structure

__all__ = [
    # checksums
    "array_crc",
    "IntegrityHeader",
    "compute_header",
    "seal",
    "is_sealed",
    "get_header",
    "verify_integrity",
    # validators
    "validate_structure",
    "structural_validators",
    # counters
    "COUNTERS",
    "IntegrityCounters",
    "IntegritySnapshot",
    # faults
    "FaultSpec",
    "InjectedFault",
    "fault_kinds",
    "inject_fault",
    "corrupt_archive",
    "ARCHIVE_FAULT_KINDS",
    # campaign
    "FaultRecord",
    "CampaignReport",
    "build_campaign_matrix",
    "run_campaign",
    "DEFAULT_FORMATS",
]
