"""Structural validators for stored sparse containers.

Checksums catch *any* mutation but need the original seal; these validators
need no prior state — they recheck the internal invariants of a container
as it sits in (simulated) device memory, in O(metadata) time for the fast
pass. ``deep=True`` additionally decodes every packed stream and
bounds-checks the decoded indices against the logical shape, which catches
corruptions that keep the container self-consistent but would make the
kernel gather out-of-range ``x`` entries.

All failures raise a typed :class:`~repro.errors.IntegrityError` (or
propagate :class:`~repro.errors.DecompressionError` from the decoders),
never a bare ``ValueError`` — the graceful-degradation path in
:func:`repro.kernels.dispatch.run_spmv` keys off :class:`ReproError`.
"""

from __future__ import annotations

import numpy as np

from .. import registry as _registry
from ..bitstream.packing import row_stream_symbols
from ..core.bro_coo import BROCOOMatrix
from ..core.bro_ell import BROELLMatrix
from ..core.bro_hyb import BROHYBMatrix
from ..core.bro_sell import BROSELLMatrix
from ..errors import IntegrityError
from ..formats.base import SparseFormat
from ..formats.cmrs import CMRSMatrix, MAX_STRIP_HEIGHT
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.sell_c_sigma import SELLCSigmaMatrix
from ..formats.sliced_ellpack import slice_bounds
from ..telemetry.tracer import span as _span

__all__ = ["validate_structure", "structural_validators"]

def _register(name: str):
    def deco(fn):
        _registry.bind_validator(name, fn)
        return fn

    return deco


def _fail(fmt: str, field: str, why: str) -> None:
    raise IntegrityError(f"{fmt} structure invalid: {field} {why}", fields=(field,))


def structural_validators() -> tuple:
    """Format names that have a dedicated structural validator."""
    return tuple(
        spec.name for spec in _registry.iter_specs() if spec.validator is not None
    )


def validate_structure(matrix: SparseFormat, deep: bool = False) -> None:
    """Validate a container's internal invariants.

    Parameters
    ----------
    matrix:
        Any registered sparse format. Formats without a dedicated validator
        pass the fast check trivially (their constructors re-validate on
        every conversion).
    deep:
        Also decode packed streams and bounds-check decoded indices.
    """
    validator = _registry.validator_for(matrix.format_name)
    if validator is not None:
        with _span("verify.structure", "integrity",
                   format=matrix.format_name, deep=deep):
            validator(matrix, deep)


# ---------------------------------------------------------------------------
# BRO-ELL
# ---------------------------------------------------------------------------


@_register("bro_ell")
def _validate_bro_ell(m: BROELLMatrix, deep: bool) -> None:
    fmt = "bro_ell"
    rows, cols = m.shape
    edges = m.slice_edges
    expected_edges = slice_bounds(rows, min(m.h, rows))
    if not np.array_equal(edges, expected_edges):
        _fail(fmt, "slice_edges", f"do not partition {rows} rows into slices of {m.h}")
    if m.sym_len not in (32, 64):
        _fail(fmt, "sym_len", f"must be 32 or 64, got {m.sym_len}")
    ptr = m.stream.slice_ptr
    if ptr.shape[0] != m.num_slices + 1:
        _fail(fmt, "slice_ptr", f"has {ptr.shape[0]} entries for {m.num_slices} slices")
    if int(ptr[0]) != 0 or int(ptr[-1]) != m.stream.data.shape[0]:
        _fail(fmt, "slice_ptr", "must start at 0 and end at the stream length")
    if np.any(np.diff(ptr) < 0):
        _fail(fmt, "slice_ptr", "must be non-decreasing")
    lengths = m.row_lengths
    if lengths.shape != (rows,):
        _fail(fmt, "row_lengths", f"shape {lengths.shape} != ({rows},)")
    if lengths.size and int(lengths.min()) < 0:
        _fail(fmt, "row_lengths", "holds a negative entry")
    for i in range(m.num_slices):
        ba = m.bit_allocs[i]
        h_i = int(edges[i + 1] - edges[i])
        if int(m.num_col[i]) != ba.shape[0]:
            _fail(fmt, f"num_col[{i}]", f"is {int(m.num_col[i])}, bit_alloc has {ba.shape[0]}")
        if ba.size and (int(ba.min()) < 1 or int(ba.max()) > m.sym_len):
            _fail(fmt, f"bit_alloc[{i}]", f"widths must lie in [1, {m.sym_len}]")
        expected = row_stream_symbols(ba, m.sym_len) * h_i
        have = int(ptr[i + 1] - ptr[i])
        if have != expected:
            _fail(fmt, f"stream[{i}]", f"holds {have} symbols, widths require {expected}")
        slice_lens = lengths[int(edges[i]) : int(edges[i + 1])]
        if slice_lens.size and int(slice_lens.max()) > ba.shape[0]:
            _fail(fmt, f"row_lengths[slice {i}]", f"exceed the slice width {ba.shape[0]}")
    if deep:
        for i in range(m.num_slices):
            cols_blk, valid = m.decode_slice_cols(i)
            real = cols_blk[valid]
            if real.size and (int(real.min()) < 0 or int(real.max()) >= cols):
                _fail(fmt, f"decoded columns[slice {i}]", f"fall outside [0, {cols})")
            both = valid[:, 1:] & valid[:, :-1]
            if np.any(both & (cols_blk[:, 1:] <= cols_blk[:, :-1])):
                _fail(fmt, f"decoded columns[slice {i}]", "must strictly increase per row")


# ---------------------------------------------------------------------------
# BRO-COO
# ---------------------------------------------------------------------------


@_register("bro_coo")
def _validate_bro_coo(m: BROCOOMatrix, deep: bool) -> None:
    fmt = "bro_coo"
    rows, cols = m.shape
    if m.interval_size <= 0 or m.warp_size <= 0 or m.interval_size % m.warp_size:
        _fail(fmt, "interval_size", f"{m.interval_size} is not a multiple of warp {m.warp_size}")
    padded = m.padded_nnz
    if padded % m.warp_size:
        _fail(fmt, "padded entries", f"count {padded} not a multiple of warp {m.warp_size}")
    if not 0 <= m.nnz <= padded:
        _fail(fmt, "nnz", f"{m.nnz} outside [0, {padded}]")
    if m.col_idx.shape != m.vals.shape:
        _fail(fmt, "col_idx/vals", "length mismatch")
    if m.col_idx.size and (int(m.col_idx.min()) < 0 or int(m.col_idx.max()) >= cols):
        _fail(fmt, "col_idx", f"falls outside [0, {cols})")
    ba = m.bit_alloc
    if ba.size and (int(ba.min()) < 1 or int(ba.max()) > m.stream.sym_len):
        _fail(fmt, "bit_alloc", f"widths must lie in [1, {m.stream.sym_len}]")
    ptr = m.stream.slice_ptr
    if ptr.shape[0] != m.num_intervals + 1:
        _fail(fmt, "slice_ptr", f"has {ptr.shape[0]} entries for {m.num_intervals} intervals")
    if int(ptr[0]) != 0 or int(ptr[-1]) != m.stream.data.shape[0]:
        _fail(fmt, "slice_ptr", "must start at 0 and end at the stream length")
    for i in range(m.num_intervals):
        L = m.interval_lanes(i)
        widths = np.full(L, int(ba[i]), dtype=np.int64)
        expected = row_stream_symbols(widths, m.stream.sym_len) * m.warp_size
        have = int(ptr[i + 1] - ptr[i])
        if have != expected:
            _fail(fmt, f"stream[{i}]", f"holds {have} symbols, width requires {expected}")
    if deep:
        prev_last = None
        for i in range(m.num_intervals):
            rows_2d = m.decode_interval_rows(i)
            lo, hi = m.interval_entry_bounds(i)
            flat = rows_2d.T.reshape(-1)[: hi - lo]
            if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= rows):
                _fail(fmt, f"decoded rows[interval {i}]", f"fall outside [0, {rows})")
            if np.any(np.diff(flat) < 0):
                _fail(fmt, f"decoded rows[interval {i}]", "must be non-decreasing")
            if prev_last is not None and flat.size and int(flat[0]) < prev_last:
                _fail(fmt, f"decoded rows[interval {i}]", "regress across the interval boundary")
            if flat.size:
                prev_last = int(flat[-1])


# ---------------------------------------------------------------------------
# BRO-SELL
# ---------------------------------------------------------------------------


@_register("bro_sell")
def _validate_bro_sell(m: BROSELLMatrix, deep: bool) -> None:
    fmt = "bro_sell"
    rows, cols = m.shape
    edges = m.chunk_edges
    expected_edges = slice_bounds(rows, min(m.c, rows)) if rows else np.zeros(1, np.int64)
    if not np.array_equal(edges, expected_edges):
        _fail(fmt, "chunk_edges", f"do not partition {rows} rows into chunks of {m.c}")
    if m.sym_len not in (32, 64):
        _fail(fmt, "sym_len", f"must be 32 or 64, got {m.sym_len}")
    ids = m.row_ids
    if ids.shape != (rows,) or not np.array_equal(np.sort(ids), np.arange(rows)):
        _fail(fmt, "row_ids", f"is not a permutation of [0, {rows})")
    lengths = m.row_lengths
    if lengths.shape != (rows,):
        _fail(fmt, "row_lengths", f"shape {lengths.shape} != ({rows},)")
    if lengths.size and int(lengths.min()) < 0:
        _fail(fmt, "row_lengths", "holds a negative entry")
    ptr = m.stream.slice_ptr
    if ptr.shape[0] != m.num_chunks + 1:
        _fail(fmt, "slice_ptr", f"has {ptr.shape[0]} entries for {m.num_chunks} chunks")
    if int(ptr[0]) != 0 or int(ptr[-1]) != m.stream.data.shape[0]:
        _fail(fmt, "slice_ptr", "must start at 0 and end at the stream length")
    perm_lengths = lengths[ids]
    for i in range(m.num_chunks):
        ba = m.bit_allocs[i]
        h_i = int(edges[i + 1] - edges[i])
        if int(m.num_col[i]) != ba.shape[0]:
            _fail(fmt, f"num_col[{i}]", f"is {int(m.num_col[i])}, bit_alloc has {ba.shape[0]}")
        if ba.size and (int(ba.min()) < 1 or int(ba.max()) > m.sym_len):
            _fail(fmt, f"bit_alloc[{i}]", f"widths must lie in [1, {m.sym_len}]")
        expected = row_stream_symbols(ba, m.sym_len) * h_i
        have = int(ptr[i + 1] - ptr[i])
        if have != expected:
            _fail(fmt, f"stream[{i}]", f"holds {have} symbols, widths require {expected}")
        chunk_lens = perm_lengths[int(edges[i]) : int(edges[i + 1])]
        if chunk_lens.size and int(chunk_lens.max()) > ba.shape[0]:
            _fail(fmt, f"row_lengths[chunk {i}]", f"exceed the chunk width {ba.shape[0]}")
    if deep:
        for i in range(m.num_chunks):
            cols_blk, valid = m.decode_chunk_cols(i)
            real = cols_blk[valid]
            if real.size and (int(real.min()) < 0 or int(real.max()) >= cols):
                _fail(fmt, f"decoded columns[chunk {i}]", f"fall outside [0, {cols})")
            both = valid[:, 1:] & valid[:, :-1]
            if np.any(both & (cols_blk[:, 1:] <= cols_blk[:, :-1])):
                _fail(fmt, f"decoded columns[chunk {i}]", "must strictly increase per row")


# ---------------------------------------------------------------------------
# SELL-C-sigma / CMRS
# ---------------------------------------------------------------------------


@_register("sell_c_sigma")
def _validate_sell(m: SELLCSigmaMatrix, deep: bool) -> None:
    fmt = "sell_c_sigma"
    rows, cols = m.shape
    edges = m.chunk_edges
    expected_edges = slice_bounds(rows, min(m.c, rows)) if rows else np.zeros(1, np.int64)
    if not np.array_equal(edges, expected_edges):
        _fail(fmt, "chunk_edges", f"do not partition {rows} rows into chunks of {m.c}")
    ids = m.row_ids
    if ids.shape != (rows,) or not np.array_equal(np.sort(ids), np.arange(rows)):
        _fail(fmt, "row_ids", f"is not a permutation of [0, {rows})")
    lengths = m.row_lengths
    if lengths.shape != (rows,):
        _fail(fmt, "row_lengths", f"shape {lengths.shape} != ({rows},)")
    if lengths.size and int(lengths.min()) < 0:
        _fail(fmt, "row_lengths", "holds a negative entry")
    if m.num_col.shape[0] != m.num_chunks:
        _fail(fmt, "num_col", f"has {m.num_col.shape[0]} entries for {m.num_chunks} chunks")
    perm_lengths = lengths[ids]
    padded = 0
    for i in range(m.num_chunks):
        h_i = int(edges[i + 1] - edges[i])
        l_i = int(m.num_col[i])
        chunk_lens = perm_lengths[int(edges[i]) : int(edges[i + 1])]
        expected_l = int(chunk_lens.max()) if chunk_lens.size else 0
        if l_i != expected_l:
            _fail(fmt, f"num_col[{i}]", f"is {l_i}, chunk row lengths require {expected_l}")
        padded += h_i * l_i
    if m._col_idx.shape[0] != padded or m._vals.shape[0] != padded:
        _fail(fmt, "col_idx/vals", f"flat buffers do not hold {padded} padded entries")
    if deep:
        if m._col_idx.size and (int(m._col_idx.min()) < 0 or int(m._col_idx.max()) >= cols):
            _fail(fmt, "col_idx", f"falls outside [0, {cols})")
        if m._vals.size and not np.all(np.isfinite(m._vals)):
            _fail(fmt, "vals", "hold non-finite entries")


@_register("cmrs")
def _validate_cmrs(m: CMRSMatrix, deep: bool) -> None:
    fmt = "cmrs"
    rows, cols = m.shape
    if not 1 <= m.height <= MAX_STRIP_HEIGHT:
        _fail(fmt, "height", f"must lie in [1, {MAX_STRIP_HEIGHT}], got {m.height}")
    n_strips = -(-rows // m.height) if rows else 0
    ptr = m.strip_ptr
    if ptr.shape[0] != n_strips + 1:
        _fail(fmt, "strip_ptr", f"has {ptr.shape[0]} entries for {n_strips} strips")
    if int(ptr[0]) != 0 or int(ptr[-1]) != m.col_idx.shape[0]:
        _fail(fmt, "strip_ptr", "must start at 0 and end at nnz")
    if np.any(np.diff(ptr) < 0):
        _fail(fmt, "strip_ptr", "must be non-decreasing")
    if not (m.col_idx.shape == m.row_in_strip.shape == m.vals.shape):
        _fail(fmt, "col_idx/row_in_strip/vals", "length mismatch")
    if m.col_idx.size and (int(m.col_idx.min()) < 0 or int(m.col_idx.max()) >= cols):
        _fail(fmt, "col_idx", f"falls outside [0, {cols})")
    if m.row_in_strip.size and int(m.row_in_strip.max()) >= m.height:
        _fail(fmt, "row_in_strip", f"holds offsets >= strip height {m.height}")
    entry_rows = m.entry_rows()
    if entry_rows.size and int(entry_rows.max()) >= rows:
        _fail(fmt, "row_in_strip", f"reconstructs rows outside [0, {rows})")
    if deep:
        if entry_rows.size and np.any(np.diff(entry_rows) < 0):
            _fail(fmt, "row_in_strip", "reconstructed rows must be non-decreasing")
        if m.vals.size and not np.all(np.isfinite(m.vals)):
            _fail(fmt, "vals", "hold non-finite entries")


# ---------------------------------------------------------------------------
# BRO-HYB / baselines
# ---------------------------------------------------------------------------


@_register("bro_hyb")
def _validate_bro_hyb(m: BROHYBMatrix, deep: bool) -> None:
    if m.ell.shape != m.shape or m.coo.shape != m.shape:
        _fail("bro_hyb", "parts", "do not share the logical shape")
    _validate_bro_ell(m.ell, deep)
    _validate_bro_coo(m.coo, deep)


@_register("csr")
def _validate_csr(m: CSRMatrix, deep: bool) -> None:
    fmt = "csr"
    rows, cols = m.shape
    if m.indptr.shape[0] != rows + 1:
        _fail(fmt, "indptr", f"must have length {rows + 1}")
    if int(m.indptr[0]) != 0 or int(m.indptr[-1]) != m.indices.shape[0]:
        _fail(fmt, "indptr", "must start at 0 and end at nnz")
    if np.any(np.diff(m.indptr) < 0):
        _fail(fmt, "indptr", "must be non-decreasing")
    if m.indices.shape != m.vals.shape:
        _fail(fmt, "indices/vals", "length mismatch")
    if m.indices.size and (int(m.indices.min()) < 0 or int(m.indices.max()) >= cols):
        _fail(fmt, "indices", f"fall outside [0, {cols})")
    if deep and m.vals.size and not np.all(np.isfinite(m.vals)):
        _fail(fmt, "vals", "hold non-finite entries")


@_register("coo")
def _validate_coo(m: COOMatrix, deep: bool) -> None:
    fmt = "coo"
    rows, cols = m.shape
    if not (m.row_idx.shape == m.col_idx.shape == m.vals.shape):
        _fail(fmt, "row_idx/col_idx/vals", "length mismatch")
    if m.row_idx.size:
        if int(m.row_idx.min()) < 0 or int(m.row_idx.max()) >= rows:
            _fail(fmt, "row_idx", f"falls outside [0, {rows})")
        if int(m.col_idx.min()) < 0 or int(m.col_idx.max()) >= cols:
            _fail(fmt, "col_idx", f"falls outside [0, {cols})")
    if deep and m.vals.size and not np.all(np.isfinite(m.vals)):
        _fail(fmt, "vals", "hold non-finite entries")
