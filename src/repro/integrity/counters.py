"""Per-process integrity counters.

A production SpMV service needs to know *how often* its integrity layer
fires: how many runs were verified, how many faults were detected and how
many requests were served by the CSR fallback instead of the compressed
kernel. The counters live at process scope (one service worker = one
process) and every :class:`~repro.kernels.base.SpMVResult` produced through
the verified dispatch path carries a snapshot of them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["IntegritySnapshot", "IntegrityCounters", "COUNTERS"]


@dataclass(frozen=True)
class IntegritySnapshot:
    """Immutable copy of the process counters at one point in time."""

    verifications: int  #: verified dispatches attempted
    detections: int  #: typed faults caught (checksum, structure, decode)
    fallbacks: int  #: dispatches served by the reference fallback kernel
    raised: int  #: faults detected with no fallback available (re-raised)


class IntegrityCounters:
    """Thread-safe per-process counters for the integrity layer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._verifications = 0
        self._detections = 0
        self._fallbacks = 0
        self._raised = 0

    def record_verification(self) -> None:
        with self._lock:
            self._verifications += 1

    def record_detection(self) -> None:
        with self._lock:
            self._detections += 1

    def record_fallback(self) -> None:
        with self._lock:
            self._fallbacks += 1

    def record_raised(self) -> None:
        with self._lock:
            self._raised += 1

    def snapshot(self) -> IntegritySnapshot:
        """Consistent copy of all four counters."""
        with self._lock:
            return IntegritySnapshot(
                verifications=self._verifications,
                detections=self._detections,
                fallbacks=self._fallbacks,
                raised=self._raised,
            )

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        with self._lock:
            self._verifications = 0
            self._detections = 0
            self._fallbacks = 0
            self._raised = 0


#: The process-wide counter instance used by :func:`repro.kernels.dispatch.run_spmv`.
COUNTERS = IntegrityCounters()
