"""Deterministic fault injection into stored BRO containers.

Every injector deep-copies the victim first (the pristine matrix — and its
integrity header, which the copy inherits — is never touched) and then
corrupts the copy the way a real memory or storage fault would: flipping a
bit inside the packed symbol stream, truncating the stream, corrupting a
``bit_alloc`` width, slice metadata, a stored value, or bytes of an
on-disk ``.npz`` archive. Injection is fully driven by a seeded
:class:`numpy.random.Generator`, so a campaign is reproducible from its
seed alone.

Faults that a container constructor already rejects surface as
``build_error`` on the returned :class:`InjectedFault` — construction-time
rejection is a *detection*, and the campaign runner counts it as one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..bitstream.multiplex import MultiplexedStream
from ..core.bro_coo import BROCOOMatrix
from ..core.bro_ell import BROELLMatrix
from ..core.bro_hyb import BROHYBMatrix
from ..errors import ReproError, ValidationError
from ..formats.base import SparseFormat

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "fault_kinds",
    "inject_fault",
    "corrupt_archive",
    "ARCHIVE_FAULT_KINDS",
]


@dataclass(frozen=True)
class FaultSpec:
    """What was injected and where."""

    kind: str  #: injector name, e.g. ``"stream_bit_flip"``
    target: str  #: human-readable fault location


@dataclass
class InjectedFault:
    """One injected fault: the corrupted copy, or the construction error."""

    spec: FaultSpec
    matrix: Optional[SparseFormat]  #: ``None`` when construction rejected the fault
    build_error: Optional[ReproError]

    @property
    def detected_on_build(self) -> bool:
        return self.build_error is not None


@dataclass(frozen=True)
class _FaultKind:
    name: str
    applies: Callable[[SparseFormat], bool]
    inject: Callable[[SparseFormat, np.random.Generator], str]  # returns target


# ---------------------------------------------------------------------------
# In-place corruption helpers (operate on the deep copy)
# ---------------------------------------------------------------------------


def _stream_of(m: SparseFormat) -> MultiplexedStream:
    return m.stream  # type: ignore[attr-defined]


def _flip_stream_bit(m, rng: np.random.Generator) -> str:
    data = _stream_of(m).data
    i = int(rng.integers(data.shape[0]))
    bit = int(rng.integers(data.dtype.itemsize * 8))
    data[i] ^= data.dtype.type(1) << data.dtype.type(bit)
    return f"stream.data[{i}] bit {bit}"


def _truncate_stream(m, rng: np.random.Generator) -> str:
    stream = _stream_of(m)
    k = int(rng.integers(1, min(4, stream.data.shape[0]) + 1))
    data = stream.data[: stream.data.shape[0] - k].copy()
    ptr = stream.slice_ptr.copy()
    np.minimum(ptr, data.shape[0], out=ptr)
    m._stream = MultiplexedStream(data, ptr, stream.sym_len)
    return f"stream truncated by {k} symbols"


def _flip_value_bit(m, rng: np.random.Generator) -> str:
    vals = m._vals if isinstance(m, BROELLMatrix) else m.vals
    i = int(rng.integers(vals.shape[0]))
    # Flip a mantissa/exponent bit through the raw representation; skip the
    # sign bit of 0.0 padding (that flip is numerically invisible).
    bits = vals.view(np.uint64)
    bit = int(rng.integers(52, 63))
    bits[i] ^= np.uint64(1) << np.uint64(bit)
    return f"vals[{i}] bit {bit}"


def _poison_value(m, rng: np.random.Generator) -> str:
    vals = m._vals if isinstance(m, BROELLMatrix) else m.vals
    i = int(rng.integers(vals.shape[0]))
    vals[i] = np.nan
    return f"vals[{i}] <- NaN"


# --- BRO-ELL specific -------------------------------------------------------


def _ell_slices_with_columns(m: BROELLMatrix) -> List[int]:
    return [i for i in range(m.num_slices) if m.bit_allocs[i].shape[0]]


def _ell_corrupt_width(m: BROELLMatrix, rng: np.random.Generator) -> str:
    i = int(rng.choice(_ell_slices_with_columns(m)))
    ba = m._bit_allocs[i]
    j = int(rng.integers(ba.shape[0]))
    old = int(ba[j])
    new = old
    while new == old:
        new = int(rng.integers(1, m.sym_len + 1))
    ba[j] = new
    return f"bit_alloc[{i}][{j}] {old} -> {new}"


def _ell_width_out_of_range(m: BROELLMatrix, rng: np.random.Generator) -> str:
    i = int(rng.choice(_ell_slices_with_columns(m)))
    ba = m._bit_allocs[i]
    j = int(rng.integers(ba.shape[0]))
    new = 0 if rng.integers(2) else m.sym_len + 1 + int(rng.integers(8))
    ba[j] = new
    return f"bit_alloc[{i}][{j}] -> {new} (out of range)"


def _ell_corrupt_metadata(m: BROELLMatrix, rng: np.random.Generator) -> str:
    which = int(rng.integers(3))
    if which == 0 and m.row_lengths.size:
        i = int(rng.integers(m.row_lengths.shape[0]))
        m._row_lengths[i] += int(rng.integers(1, 5))
        return f"row_lengths[{i}] inflated"
    if which == 1 and m.num_col.size:
        i = int(rng.integers(m.num_col.shape[0]))
        m._num_col[i] += int(rng.integers(1, 5))
        return f"num_col[{i}] inflated"
    ptr = m.stream.slice_ptr
    if ptr.shape[0] > 2:
        i = int(rng.integers(1, ptr.shape[0] - 1))
        ptr[i] += int(rng.integers(1, 3))
        return f"slice_ptr[{i}] shifted"
    m._row_lengths[0] += 1
    return "row_lengths[0] inflated"


# --- BRO-COO specific -------------------------------------------------------


def _coo_corrupt_width(m: BROCOOMatrix, rng: np.random.Generator) -> str:
    i = int(rng.integers(m.num_intervals))
    old = int(m._bit_alloc[i])
    new = old
    while new == old:
        new = int(rng.integers(1, m.stream.sym_len + 1))
    m._bit_alloc[i] = new
    return f"bit_alloc[{i}] {old} -> {new}"


def _coo_col_out_of_range(m: BROCOOMatrix, rng: np.random.Generator) -> str:
    i = int(rng.integers(m.col_idx.shape[0]))
    m._col_idx[i] = m.shape[1] + int(rng.integers(1, 100))
    return f"col_idx[{i}] out of range"


def _coo_corrupt_metadata(m: BROCOOMatrix, rng: np.random.Generator) -> str:
    if rng.integers(2):
        m._nnz = m._nnz + int(rng.integers(1, m.padded_nnz - m.nnz + 2))
        return "nnz inflated"
    ptr = m.stream.slice_ptr
    if ptr.shape[0] > 2:
        i = int(rng.integers(1, ptr.shape[0] - 1))
        ptr[i] += int(rng.integers(1, 3))
        return f"slice_ptr[{i}] shifted"
    m._nnz = max(0, m._nnz - 1)
    return "nnz deflated"


# ---------------------------------------------------------------------------
# Kind registries
# ---------------------------------------------------------------------------


def _has_stream(m) -> bool:
    return _stream_of(m).data.shape[0] > 0


def _has_vals(m) -> bool:
    vals = m._vals if isinstance(m, BROELLMatrix) else m.vals
    return vals.shape[0] > 0


_ELL_KINDS = [
    _FaultKind("stream_bit_flip", _has_stream, _flip_stream_bit),
    _FaultKind("stream_truncate", _has_stream, _truncate_stream),
    _FaultKind("width_corrupt", lambda m: bool(_ell_slices_with_columns(m)), _ell_corrupt_width),
    _FaultKind(
        "width_out_of_range", lambda m: bool(_ell_slices_with_columns(m)), _ell_width_out_of_range
    ),
    _FaultKind("metadata_corrupt", lambda m: True, _ell_corrupt_metadata),
    _FaultKind("value_bit_flip", _has_vals, _flip_value_bit),
    _FaultKind("value_nan", _has_vals, _poison_value),
]

_COO_KINDS = [
    _FaultKind("stream_bit_flip", _has_stream, _flip_stream_bit),
    _FaultKind("stream_truncate", _has_stream, _truncate_stream),
    _FaultKind("width_corrupt", lambda m: m.num_intervals > 0, _coo_corrupt_width),
    _FaultKind("col_out_of_range", lambda m: m.col_idx.shape[0] > 0, _coo_col_out_of_range),
    _FaultKind("metadata_corrupt", lambda m: m.num_intervals > 0, _coo_corrupt_metadata),
    _FaultKind("value_bit_flip", _has_vals, _flip_value_bit),
    _FaultKind("value_nan", _has_vals, _poison_value),
]


def _hyb_kind(name: str) -> _FaultKind:
    def applies(m: BROHYBMatrix) -> bool:
        return any(
            k.name == name and k.applies(part)
            for part, kinds in ((m.ell, _ELL_KINDS), (m.coo, _COO_KINDS))
            for k in kinds
        )

    def inject(m: BROHYBMatrix, rng: np.random.Generator) -> str:
        candidates = [
            (label, part, k)
            for label, part, kinds in (("ell", m.ell, _ELL_KINDS), ("coo", m.coo, _COO_KINDS))
            for k in kinds
            if k.name == name and k.applies(part)
        ]
        label, part, kind = candidates[int(rng.integers(len(candidates)))]
        return f"{label}: {kind.inject(part, rng)}"

    return _FaultKind(name, applies, inject)


_HYB_KINDS = [
    _hyb_kind(name)
    for name in (
        "stream_bit_flip",
        "stream_truncate",
        "width_corrupt",
        "metadata_corrupt",
        "value_bit_flip",
        "value_nan",
    )
]

_KINDS: Dict[str, List[_FaultKind]] = {
    "bro_ell": _ELL_KINDS,
    "bro_coo": _COO_KINDS,
    "bro_hyb": _HYB_KINDS,
}


def fault_kinds(format_name: str) -> tuple:
    """Names of the fault kinds injectable into a format."""
    return tuple(k.name for k in _KINDS.get(format_name, ()))


def inject_fault(
    matrix: SparseFormat,
    rng: np.random.Generator,
    kind: Optional[str] = None,
) -> InjectedFault:
    """Corrupt a deep copy of ``matrix`` with one randomly chosen fault.

    Parameters
    ----------
    matrix:
        A BRO container (``bro_ell``, ``bro_coo`` or ``bro_hyb``). The
        original — including its integrity header, if sealed — is never
        modified.
    rng:
        Seeded generator driving every random choice.
    kind:
        Restrict injection to one named fault kind (default: any
        applicable kind, chosen uniformly).
    """
    kinds = _KINDS.get(matrix.format_name)
    if not kinds:
        raise ValidationError(
            f"no fault injectors registered for format {matrix.format_name!r}"
        )
    victim = copy.deepcopy(matrix)
    applicable = [k for k in kinds if (kind is None or k.name == kind) and k.applies(victim)]
    if not applicable:
        raise ValidationError(
            f"no applicable fault kind {kind!r} for this {matrix.format_name} instance"
        )
    chosen = applicable[int(rng.integers(len(applicable)))]
    try:
        target = chosen.inject(victim, rng)
    except ReproError as exc:
        return InjectedFault(FaultSpec(chosen.name, "rejected at construction"), None, exc)
    return InjectedFault(FaultSpec(chosen.name, target), victim, None)


# ---------------------------------------------------------------------------
# On-disk archive corruption
# ---------------------------------------------------------------------------

ARCHIVE_FAULT_KINDS = ("byte_flip", "truncate", "garbage_header")


def corrupt_archive(
    path: Union[str, Path],
    rng: np.random.Generator,
    kind: Optional[str] = None,
) -> FaultSpec:
    """Corrupt an on-disk ``.npz`` cache archive in place.

    ``byte_flip`` flips one random byte, ``truncate`` drops the file tail,
    and ``garbage_header`` overwrites the leading bytes (destroying the zip
    magic). Returns the spec of what was done.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if not raw:
        raise ValidationError(f"{path} is empty; nothing to corrupt")
    if kind is None:
        kind = ARCHIVE_FAULT_KINDS[int(rng.integers(len(ARCHIVE_FAULT_KINDS)))]
    if kind == "byte_flip":
        i = int(rng.integers(len(raw)))
        raw[i] ^= 1 << int(rng.integers(8))
        target = f"byte {i}"
    elif kind == "truncate":
        keep = int(rng.integers(len(raw)))
        raw = raw[:keep]
        target = f"truncated to {keep} bytes"
    elif kind == "garbage_header":
        n = min(len(raw), 16)
        raw[:n] = bytes(rng.integers(0, 256, size=n, dtype=np.uint8))
        target = f"first {n} bytes overwritten"
    else:
        raise ValidationError(f"unknown archive fault kind {kind!r}")
    path.write_bytes(bytes(raw))
    return FaultSpec(kind, target)
