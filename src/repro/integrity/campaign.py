"""Seeded fault-injection campaigns over the BRO formats.

The campaign's contract is *zero silent corruption*: every injected fault
must either be detected as a typed :class:`~repro.errors.ReproError`
(at construction, during verification, or during decode) or be recovered
transparently by the CSR fallback with a result that matches the dense
reference to machine precision. A fault that leaves the output unchanged
*and* undetected is counted as ``benign`` (e.g. the injector flipped state
that the kernel provably never reads); a wrong result with no error is
``silent`` — the failure class this subsystem exists to eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..exec.policy import ExecutionPolicy
from ..formats.base import SparseFormat
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..matrices.generators import banded_random
from .checksums import seal
from .faults import inject_fault

__all__ = [
    "FaultRecord",
    "CampaignReport",
    "build_campaign_matrix",
    "run_campaign",
    "DEFAULT_FORMATS",
]

DEFAULT_FORMATS: Tuple[str, ...] = ("bro_ell", "bro_coo", "bro_hyb")

#: Tolerance for "matches the dense reference": different summation orders
#: (CSR reduceat vs dense matmul) differ only by rounding at this scale.
_RTOL = 1e-9
_ATOL = 1e-12


@dataclass
class FaultRecord:
    """Outcome of one injected fault."""

    format_name: str
    kind: str
    target: str
    detected: bool  #: a typed ReproError was raised somewhere on the path
    recovered: bool  #: fallback kernel served a reference-matching result
    benign: bool  #: undetected but the output still matched the reference
    silent: bool  #: undetected AND wrong — a contract violation
    stage: str  #: "build" | "dispatch" | "none"
    error: Optional[str] = None


@dataclass
class CampaignReport:
    """Aggregated outcome of a fault-injection campaign."""

    records: List[FaultRecord] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.records)

    @property
    def detected(self) -> int:
        return sum(r.detected for r in self.records)

    @property
    def recovered(self) -> int:
        return sum(r.recovered for r in self.records)

    @property
    def benign(self) -> int:
        return sum(r.benign for r in self.records)

    @property
    def silent(self) -> int:
        return sum(r.silent for r in self.records)

    @property
    def clean(self) -> bool:
        """True when not a single injected fault escaped silently."""
        return self.silent == 0

    def silent_records(self) -> List[FaultRecord]:
        return [r for r in self.records if r.silent]

    def rows(self) -> List[Dict[str, object]]:
        """Per-(format, kind) aggregate rows for table rendering."""
        agg: Dict[Tuple[str, str], Dict[str, int]] = {}
        for r in self.records:
            row = agg.setdefault(
                (r.format_name, r.kind),
                {"injected": 0, "detected": 0, "recovered": 0, "benign": 0, "silent": 0},
            )
            row["injected"] += 1
            row["detected"] += int(r.detected)
            row["recovered"] += int(r.recovered)
            row["benign"] += int(r.benign)
            row["silent"] += int(r.silent)
        return [
            {"format": fmt, "fault": kind, **counts}
            for (fmt, kind), counts in sorted(agg.items())
        ]


def build_campaign_matrix(
    format_name: str, seed: int = 0, m: int = 96, n: Optional[int] = None
) -> Tuple[SparseFormat, COOMatrix]:
    """A small sealed BRO matrix plus its pristine COO source.

    Sized so each container has several slices/intervals (faults can land
    in interior metadata, not just the first block) while keeping a single
    injection cheap enough for 500+ fault campaigns in unit tests.
    """
    coo = banded_random(m, 8.0, 3.0, bandwidth=max(16, m // 3), seed=seed, n=n)
    if format_name == "bro_ell":
        from ..core.bro_ell import BROELLMatrix

        mat: SparseFormat = BROELLMatrix.from_coo(coo, h=16)
    elif format_name == "bro_coo":
        from ..core.bro_coo import BROCOOMatrix

        mat = BROCOOMatrix.from_coo(coo, interval_size=64)
    elif format_name == "bro_hyb":
        from ..core.bro_hyb import BROHYBMatrix

        mat = BROHYBMatrix.from_coo(coo, h=16, interval_size=64)
    else:
        raise ReproError(f"campaign does not support format {format_name!r}")
    return seal(mat), coo


def run_campaign(
    formats: Sequence[str] = DEFAULT_FORMATS,
    n_faults: int = 500,
    seed: int = 0,
    device: str = "k20",
    verify: object = True,
) -> CampaignReport:
    """Inject ``n_faults`` faults round-robin across ``formats``.

    Every fault is injected into a fresh deep copy of a sealed container
    and then dispatched through :func:`repro.kernels.dispatch.run_spmv`
    with verification enabled and the pristine CSR matrix as fallback; the
    outcome is classified against the dense reference product.
    """
    from ..kernels.dispatch import run_spmv  # deferred: avoids an import cycle

    report = CampaignReport()
    rng = np.random.default_rng(seed)
    fixtures = []
    for i, fmt in enumerate(formats):
        sealed, coo = build_campaign_matrix(fmt, seed=seed + 17 * i)
        x = np.random.default_rng(seed + 101 + i).standard_normal(coo.shape[1])
        y_ref = coo.to_dense() @ x
        fallback = CSRMatrix.from_coo(coo)
        fixtures.append((fmt, sealed, x, y_ref, fallback))

    for i in range(int(n_faults)):
        fmt, sealed, x, y_ref, fallback = fixtures[i % len(fixtures)]
        injected = inject_fault(sealed, rng)
        if injected.matrix is None:
            report.records.append(
                FaultRecord(
                    fmt,
                    injected.spec.kind,
                    injected.spec.target,
                    detected=True,
                    recovered=False,
                    benign=False,
                    silent=False,
                    stage="build",
                    error=str(injected.build_error),
                )
            )
            continue
        try:
            result = run_spmv(
                injected.matrix, x, device,
                policy=ExecutionPolicy(verify=verify, fallback=fallback),
            )
        except ReproError as exc:
            report.records.append(
                FaultRecord(
                    fmt,
                    injected.spec.kind,
                    injected.spec.target,
                    detected=True,
                    recovered=False,
                    benign=False,
                    silent=False,
                    stage="dispatch",
                    error=str(exc),
                )
            )
            continue
        correct = bool(
            result.y.shape == y_ref.shape
            and np.allclose(result.y, y_ref, rtol=_RTOL, atol=_ATOL)
        )
        detected = result.fault_detected
        report.records.append(
            FaultRecord(
                fmt,
                injected.spec.kind,
                injected.spec.target,
                detected=detected,
                recovered=detected and result.fallback_used and correct,
                benign=not detected and correct,
                # The caller sees no exception on this path, so ANY wrong
                # result — detected internally or not — escaped silently.
                silent=not correct,
                stage="dispatch" if detected else "none",
                error=result.integrity_error,
            )
        )
    return report
