"""The end-to-end pipeline session: one object, the whole paper dataflow.

The library's steps — generate/load a matrix, reorder its rows (§3.4),
convert it into a registered format, seal it, persist it as a ``.brx``
container, prepare an execution plan and run SpMV/SpMM — were previously
wired together ad hoc by every caller (CLI subcommands, the benchmark
harness, the solver operators). :class:`Session` is the one place that
wiring lives now.

A session is a small state machine over ``(source COO, current container,
device, plan cache)`` with chainable steps::

    from repro.pipeline import Session

    y = (
        Session(device="k20")
        .load("qcd", scale=0.05)
        .reorder("bar")
        .convert("bro_ell", h=64)
        .seal()
        .prepare()
        .run(x)
        .y
    )

Persistence round-trips through the same object::

    Session(...).load("qcd").convert("bro_ell").seal().save("qcd.brx")
    sess = Session.open("qcd.brx")      # seal intact, plan cache warm-keyed

Every step resolves capabilities through :mod:`repro.registry` — which
formats convert with which keywords, which have plan builders, which
serialize — so a format registered in one place works through the whole
pipeline with no session changes. Execution goes through
:func:`repro.kernels.dispatch.run_spmv` / ``run_spmm``, the integrity
boundary, so sessions honor ``verify`` levels and graceful fallback
exactly like direct dispatch.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from . import registry as _registry
from .errors import ReproError, ValidationError
from .exec.policy import ExecutionPolicy
from .formats.base import SparseFormat
from .formats.conversion import convert as _convert
from .formats.coo import COOMatrix
from .gpu.device import DeviceSpec, get_device
from .integrity.checksums import get_header, is_sealed, seal as _seal
from .kernels.base import SpMVResult
from .kernels.dispatch import run_spmm, run_spmv
from .kernels.plan import SpMVPlan
from .kernels.plancache import PLAN_CACHE, PlanCache

__all__ = ["Session"]

#: Reordering methods a session can apply, resolved lazily so importing
#: the pipeline does not pull in every permutation algorithm.
_REORDERINGS = ("bar", "rcm", "amd", "rowsort", "identity")


def _permutation_fn(method: str) -> Callable[..., np.ndarray]:
    from . import reorder

    table: Dict[str, Callable[..., np.ndarray]] = {
        "bar": reorder.bar_permutation,
        "rcm": reorder.rcm_permutation,
        "amd": reorder.amd_permutation,
        "rowsort": reorder.rowsort_permutation,
        "identity": lambda coo, **kw: reorder.identity_permutation(coo.shape[0]),
    }
    if method not in table:
        raise ValidationError(
            f"unknown reordering {method!r}; choose from {_REORDERINGS}"
        )
    return table[method]


class Session:
    """A fluent pipeline over one matrix: load → reorder → convert → seal
    → save/open → prepare → execute.

    Parameters
    ----------
    device:
        Simulated device to execute on (spec or registry key).
    policy:
        The session's default :class:`~repro.exec.policy.ExecutionPolicy`
        — verification level, fallback container, engine selector, plan
        cache and multi-device sharding, exactly as accepted by
        :func:`~repro.kernels.dispatch.run_spmv`. Unless the policy asks
        for the reference engine, a session without an explicit plan
        cache adopts the process-wide one, so ``engine="auto"`` sessions
        use the prepared-plan engine (historical behavior).

    Mutating steps return ``self`` so pipelines chain; execution steps
    return the :class:`~repro.kernels.base.SpMVResult`. The session
    accumulates ``spmv_calls``, ``device_time``, ``dram_bytes`` and
    ``fallbacks_used`` across executions.
    """

    def __init__(
        self,
        device: DeviceSpec | str = "k20",
        *,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        pol = policy if policy is not None else ExecutionPolicy()
        if pol.plan_cache is None and pol.engine != "reference":
            pol = pol.with_(plan_cache=PLAN_CACHE)
        self.policy = pol
        self._source: Optional[COOMatrix] = None
        self._matrix: Optional[SparseFormat] = None
        self._permutation: Optional[np.ndarray] = None
        self.last_result: Optional[SpMVResult] = None
        self.spmv_calls = 0
        self.device_time = 0.0  #: accumulated predicted seconds in SpMV
        self.dram_bytes = 0  #: accumulated predicted DRAM traffic
        self.fallbacks_used = 0  #: executions served by the fallback matrix
        self._tuner = None  #: OnlineTuner attached by autotune(), if any

    # -- policy views ----------------------------------------------------
    # Read/write aliases kept so pre-policy call sites (and the fluent
    # with_fallback step) keep working against the single policy object.
    @property
    def verify(self) -> Union[bool, str]:
        return self.policy.verify

    @verify.setter
    def verify(self, value: Union[bool, str, None]) -> None:
        self.policy = self.policy.with_(verify=value)

    @property
    def fallback(self) -> Optional[SparseFormat]:
        return self.policy.fallback

    @fallback.setter
    def fallback(self, value: Optional[SparseFormat]) -> None:
        self.policy = self.policy.with_(fallback=value)

    @property
    def engine(self) -> str:
        return self.policy.engine

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        return self.policy.plan_cache

    # -- state ----------------------------------------------------------
    @property
    def matrix(self) -> SparseFormat:
        """The current container (raises until a matrix is loaded)."""
        if self._matrix is None:
            raise ReproError(
                "session holds no matrix yet; call load()/use()/Session.open()"
            )
        return self._matrix

    @property
    def source(self) -> COOMatrix:
        """The COO the pipeline started from (derived lazily if opened)."""
        if self._source is None:
            self._source = self.matrix.to_coo()
        return self._source

    @property
    def format_name(self) -> str:
        return self.matrix.format_name

    @property
    def permutation(self) -> Optional[np.ndarray]:
        """The row permutation applied by :meth:`reorder`, if any."""
        return self._permutation

    @property
    def sealed(self) -> bool:
        return self._matrix is not None and is_sealed(self._matrix)

    @property
    def fingerprint(self):
        """Sealed content address (``None`` unsealed) — the plan-cache key."""
        from .serialize import content_fingerprint

        return content_fingerprint(self.matrix)

    # -- ingestion ------------------------------------------------------
    def load(
        self,
        spec: Union[str, os.PathLike],
        *,
        scale: float = 1.0,
        seed: Optional[int] = None,
    ) -> "Session":
        """Load a matrix by Table 2 name, ``.mtx`` path or ``.brx`` path."""
        text = os.fspath(spec)
        from .matrices.io import read_matrix_market
        from .matrices.suite import TABLE2, generate

        if text in TABLE2:
            coo = generate(text, scale=scale, seed=seed)
        elif text.endswith(".brx"):
            return self.open_into(text)
        elif text.endswith(".mtx"):
            coo = read_matrix_market(text)
        else:
            raise ReproError(
                f"{text!r} is neither a Table 2 matrix name nor a "
                f".mtx/.brx path; known names: {', '.join(sorted(TABLE2))}"
            )
        return self.use(coo)

    def use(self, matrix: SparseFormat) -> "Session":
        """Adopt an existing container as the session's matrix."""
        self._matrix = matrix
        self._source = matrix if isinstance(matrix, COOMatrix) else None
        self._permutation = None
        return self

    # -- transforms -----------------------------------------------------
    def reorder(self, method: str = "bar", **kwargs: Any) -> "Session":
        """Permute the rows of the *source* matrix (paper §3.4).

        Must run before :meth:`convert`; the computed permutation stays
        available as :attr:`permutation` so callers can un-permute
        products (``y_original[perm[i]] == y_reordered[i]``).
        """
        from .reorder import apply_reordering

        if self._matrix is not None and not isinstance(self._matrix, COOMatrix):
            raise ReproError(
                "reorder() permutes the source COO; call it before convert()"
            )
        perm = _permutation_fn(method)(self.source, **kwargs)
        self._source = apply_reordering(self.source, perm)
        self._matrix = self._source
        self._permutation = perm
        return self

    def convert(self, target: str, **kwargs: Any) -> "Session":
        """Convert the current matrix to a registered format.

        Keywords override the format's registry-declared conversion
        defaults; unknown ones raise ``FormatError`` naming the valid set.
        """
        self._matrix = _convert(self.matrix, target, **kwargs)
        return self

    def seal(self) -> "Session":
        """Attach the CRC32 integrity header to the current container."""
        _seal(self.matrix)
        return self

    def with_fallback(self, target: str = "csr", **kwargs: Any) -> "Session":
        """Build a trusted fallback container from the session's source."""
        self.fallback = _convert(self.source, target, **kwargs)
        return self

    # -- persistence ----------------------------------------------------
    def save(self, path: Union[str, os.PathLike]) -> "Session":
        """Write the current container to a versioned ``.brx`` file."""
        from .serialize import save_container

        save_container(self.matrix, path)
        return self

    def open_into(
        self,
        path: Union[str, os.PathLike],
        *,
        mmap_arrays: bool = True,
        verify_seal: bool = True,
    ) -> "Session":
        """Load a ``.brx`` container into *this* session."""
        from .serialize import load_container

        return self.use(
            load_container(path, mmap_arrays=mmap_arrays, verify=verify_seal)
        )

    @classmethod
    def open(
        cls,
        path: Union[str, os.PathLike],
        device: DeviceSpec | str = "k20",
        *,
        mmap_arrays: bool = True,
        verify_seal: bool = True,
        **kwargs: Any,
    ) -> "Session":
        """Open a saved ``.brx`` container as a fresh session.

        The stored integrity seal is reattached, so a sealed container's
        first :meth:`prepare` is a content hit in the plan cache when the
        original object's plan is still resident.
        """
        sess = cls(device, **kwargs)
        return sess.open_into(
            path, mmap_arrays=mmap_arrays, verify_seal=verify_seal
        )

    # -- execution ------------------------------------------------------
    def prepare(self) -> "Session":
        """Warm the plan cache for the current container (no-op when the
        format has no plan builder or the session runs the reference
        engine)."""
        if self.engine == "reference" or self.plan_cache is None:
            return self
        if _registry.has_planner(self.matrix.format_name):
            self.plan_cache.get_or_build(
                self.matrix, self.device,
                backend=self.policy.compute_backend,
            )
        return self

    def plan(self) -> Optional[SpMVPlan]:
        """The cached plan for the current container, building if needed."""
        if self.plan_cache is None or not _registry.has_planner(
            self.matrix.format_name
        ):
            return None
        return self.plan_cache.get_or_build(
            self.matrix, self.device, backend=self.policy.compute_backend
        )

    def autotune(self, config=None) -> "Session":
        """Attach an online autotuner (:mod:`repro.tuner.online`).

        Every subsequent :meth:`run` call feeds the
        tuner; after each ``config.interval`` calls it re-scores the
        advisor's candidate grid against the measured throughput and
        re-plans this session in place when the predicted win clears the
        hysteresis threshold. Calling again replaces the tuner (fresh
        window and retune budget); ``detach_tuner()`` removes it.
        """
        from .tuner.online import OnlineTuner, RetuneConfig

        if config is None:
            config = RetuneConfig()
        self._tuner = OnlineTuner(self, config)
        return self

    def detach_tuner(self) -> "Session":
        """Remove the online autotuner (results stop being observed)."""
        self._tuner = None
        return self

    @property
    def tuner(self):
        """The attached :class:`~repro.tuner.online.OnlineTuner`, if any."""
        return self._tuner

    def _record(self, result: SpMVResult) -> SpMVResult:
        self.spmv_calls += 1
        if result.fallback_used:
            self.fallbacks_used += 1
        self.device_time += result.timing.time
        self.dram_bytes += result.counters.dram_bytes
        self.last_result = result
        if self._tuner is not None:
            self._tuner.observe(result)
        return result

    def _call_policy(
        self, policy: Optional[ExecutionPolicy],
        verify: Union[bool, str, None], engine: Optional[str],
    ) -> ExecutionPolicy:
        """The effective policy of one execute call.

        ``policy=`` replaces the session default outright (except that a
        missing plan cache inherits the session's); the legacy
        ``verify=``/``engine=`` keywords override individual fields.
        """
        if policy is not None:
            if verify is not None or engine is not None:
                raise ValidationError(
                    "execute: pass either policy= or the legacy "
                    "verify=/engine= overrides, not both"
                )
            if policy.plan_cache is None and policy.engine != "reference":
                policy = policy.with_(plan_cache=self.policy.plan_cache)
            return policy
        pol = self.policy
        if verify is not None:
            pol = pol.with_(verify=verify)
        if engine is not None:
            pol = pol.with_(engine=engine)
        return pol

    def run(
        self,
        x: np.ndarray,
        *,
        policy: Optional[ExecutionPolicy] = None,
        verify: Union[bool, str, None] = None,
        engine: Optional[str] = None,
    ) -> SpMVResult:
        """Execute ``y = A @ x`` — the one entry point for both shapes.

        A 1-D ``x`` runs a single SpMV; a 2-D ``(n, k)`` block runs one
        multi-RHS SpMM whose column ``j`` is bit-identical to the
        single-vector run of ``x[:, j]``. Both shapes return the same
        typed :class:`~repro.kernels.base.SpMVResult` and hit the same
        dispatch/integrity boundary, so ``policy=`` (or the legacy
        ``verify=``/``engine=`` field overrides) behaves identically.

        This supersedes the ``execute``/``execute_many`` pair, which
        remain as deprecated shims.
        """
        x = np.asarray(x)
        if x.ndim == 1:
            runner = run_spmv
        elif x.ndim == 2:
            runner = run_spmm
        else:
            raise ValidationError(
                f"Session.run takes a 1-D vector or a (n, k) batch, "
                f"got ndim={x.ndim}"
            )
        return self._record(
            runner(
                self.matrix, x, self.device,
                policy=self._call_policy(policy, verify, engine),
            )
        )

    def execute(
        self,
        x: np.ndarray,
        *,
        policy: Optional[ExecutionPolicy] = None,
        verify: Union[bool, str, None] = None,
        engine: Optional[str] = None,
    ) -> SpMVResult:
        """Deprecated spelling of :meth:`run` for a single vector."""
        warnings.warn(
            "Session.execute is deprecated; use Session.run",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(x, policy=policy, verify=verify, engine=engine)

    def execute_many(
        self,
        X: np.ndarray,
        *,
        policy: Optional[ExecutionPolicy] = None,
        verify: Union[bool, str, None] = None,
        engine: Optional[str] = None,
    ) -> SpMVResult:
        """Deprecated spelling of :meth:`run` for a multi-RHS block."""
        warnings.warn(
            "Session.execute_many is deprecated; use Session.run",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(X, policy=policy, verify=verify, engine=engine)

    # -- introspection --------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """A JSON-able snapshot of the session's state and counters."""
        spec = (
            _registry.get_spec(self._matrix.format_name)
            if self._matrix is not None
            else None
        )
        header = get_header(self._matrix) if self._matrix is not None else None
        return {
            "format": spec.name if spec else None,
            "shape": list(self._matrix.shape) if self._matrix is not None else None,
            "nnz": int(self._matrix.nnz) if self._matrix is not None else None,
            "device": self.device.name,
            "engine": self.engine,
            "compute_backend": self.policy.compute_backend,
            "devices": self.policy.devices,
            "sealed": header is not None,
            "reordered": self._permutation is not None,
            "plannable": bool(spec and _registry.has_planner(spec.name)),
            "serializable": bool(spec and spec.has_serializer),
            "spmv_calls": self.spmv_calls,
            "device_time": self.device_time,
            "dram_bytes": int(self.dram_bytes),
            "fallbacks_used": self.fallbacks_used,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            f"{self._matrix.format_name} {self._matrix.shape}"
            if self._matrix is not None
            else "empty"
        )
        return f"Session({state}, device={self.device.name!r})"
