"""Dependency-free ASCII charts for the figure experiments.

The paper's figures are line/bar charts; these helpers render the same
series in a terminal so ``python -m repro bench fig3 --plot`` resembles
the figure rather than a raw table. Pure text, deterministic, testable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ValidationError

__all__ = ["bar_chart", "line_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValidationError("labels and values must have equal length")
    if not labels:
        return f"{title}\n(no data)"
    if any(v < 0 for v in values):
        raise ValidationError("bar_chart expects non-negative values")
    vmax = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = value / vmax * width
        full, frac = int(filled), filled - int(filled)
        bar = "█" * full + (_BLOCKS[int(frac * 8)] if frac > 0 else "")
        lines.append(f"{str(label):>{label_w}s} |{bar:<{width + 1}s} "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a name to ``(x, y)`` points; each series plots with its
    own marker and the legend lists the mapping.
    """
    if not series or all(not pts for pts in series.values()):
        return f"{title}\n(no data)"
    markers = "ox+*#@%&"
    all_pts = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [title] if title else []
    lines.append(f"{y_hi:10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(f"{'':12s}{x_lo:<10.2f}{'':{max(0, width - 20)}s}{x_hi:>10.2f}")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(f"{'':12s}{legend}")
    return "\n".join(lines)
