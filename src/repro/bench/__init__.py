"""Benchmark harness reproducing the paper's tables and figures.

:mod:`~repro.bench.harness` — matrix/format/device execution grid with
per-process caching; :mod:`~repro.bench.experiments` — one function per
paper table/figure returning structured rows; :mod:`~repro.bench.reporting`
— ASCII tables and CSV output.

The ``benchmarks/`` directory at the repository root contains one
pytest-benchmark file per table/figure that calls into this package.
"""

from .harness import (
    BENCH_SCALE_ENV,
    ExperimentGrid,
    bench_scale,
    cached_matrix,
    cached_format,
)
from .reporting import format_table, geomean, write_csv

__all__ = [
    "ExperimentGrid",
    "cached_matrix",
    "cached_format",
    "bench_scale",
    "BENCH_SCALE_ENV",
    "format_table",
    "geomean",
    "write_csv",
]
