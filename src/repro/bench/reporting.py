"""Plain-text tables and CSV output for benchmark results."""

from __future__ import annotations

import csv
import math
import os
from typing import Dict, Iterable, Sequence

from ..errors import ValidationError

__all__ = ["format_table", "geomean", "write_csv"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional aggregate for speedup ratios)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValidationError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValidationError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    rows: Sequence[Dict],
    columns: Sequence[str],
    title: str = "",
    floatfmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table with the given column order."""
    if not rows:
        return f"{title}\n(no rows)"

    def render(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    cells = [[render(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    )
    parts = [title, header, sep, body] if title else [header, sep, body]
    return "\n".join(parts)


def write_csv(rows: Sequence[Dict], path: str, columns: Sequence[str]) -> None:
    """Write rows to a CSV file, creating parent directories."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="", encoding="ascii") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
