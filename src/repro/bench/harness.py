"""Execution harness for the paper-reproduction experiments.

Matrices and converted formats are cached per process so the per-figure
benchmark files can share them; the default matrix scale is read from the
``REPRO_BENCH_SCALE`` environment variable (default 0.06) so a full-size
run is one environment variable away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

from .. import registry as _registry
from ..exec.policy import ExecutionPolicy
from ..formats.base import SparseFormat
from ..formats.conversion import convert
from ..formats.coo import COOMatrix
from ..gpu.device import DEVICES, DeviceSpec, get_device
from ..kernels.base import SpMVResult
from ..matrices.suite import generate
from ..pipeline import Session

__all__ = [
    "BENCH_SCALE_ENV",
    "bench_scale",
    "cached_matrix",
    "cached_format",
    "spmv_once",
    "ExperimentGrid",
]

BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"
_DEFAULT_SCALE = 0.06


def bench_scale(default: float | None = None) -> float:
    """Matrix scale used by the benchmark suite (env-overridable)."""
    raw = os.environ.get(BENCH_SCALE_ENV)
    if raw:
        return float(raw)
    return _DEFAULT_SCALE if default is None else default


@lru_cache(maxsize=64)
def cached_matrix(name: str, scale: float) -> COOMatrix:
    """Generate (once per process) a suite matrix at the given scale."""
    return generate(name, scale=scale)


@lru_cache(maxsize=256)
def cached_format(name: str, scale: float, fmt: str, h: int = 256) -> SparseFormat:
    """Convert (once per process) a suite matrix into a stored format."""
    coo = cached_matrix(name, scale)
    kwargs = {"h": h} if _registry.get_spec(fmt).accepts("h") else {}
    return convert(coo, fmt, **kwargs)


def _x_vector(n: int) -> np.ndarray:
    return np.random.default_rng(12345).standard_normal(n)


def spmv_once(
    matrix: SparseFormat, device: DeviceSpec | str, x: np.ndarray | None = None
) -> SpMVResult:
    """Run one simulated SpMV with the format's stepwise reference kernel."""
    dev = get_device(device) if isinstance(device, str) else device
    if x is None:
        x = _x_vector(matrix.shape[1])
    return (
        Session(dev, policy=ExecutionPolicy(engine="reference"))
        .use(matrix)
        .run(x)
    )


@dataclass
class ExperimentGrid:
    """Run a (matrix x format x device) grid and collect result rows."""

    matrices: Sequence[str]
    formats: Sequence[str]
    devices: Sequence[str] = ("c2070", "gtx680", "k20")
    scale: float = field(default_factory=bench_scale)
    h: int = 256
    verify: bool = True

    def run(self) -> List[Dict]:
        """Execute the grid; one row per (matrix, device) with per-format
        GFlop/s, plus shared matrix metadata."""
        rows: List[Dict] = []
        for name in self.matrices:
            coo = cached_matrix(name, self.scale)
            x = _x_vector(coo.shape[1])
            reference = coo.spmv(x) if self.verify else None
            per_format: Dict[str, Dict[str, SpMVResult]] = {}
            for fmt in self.formats:
                mat = cached_format(name, self.scale, fmt, self.h)
                per_format[fmt] = {}
                for dev in self.devices:
                    res = spmv_once(mat, dev, x)
                    if reference is not None and not np.allclose(
                        res.y, reference, rtol=1e-8, atol=1e-10
                    ):
                        raise AssertionError(
                            f"{fmt} kernel mismatch on {name} ({dev})"
                        )
                    per_format[fmt][dev] = res
            for dev in self.devices:
                row: Dict = {
                    "matrix": name,
                    "device": DEVICES[dev].name,
                    "device_key": dev,
                    "nnz": coo.nnz,
                }
                for fmt in self.formats:
                    res = per_format[fmt][dev]
                    row[f"gflops_{fmt}"] = res.gflops
                    row[f"bytes_{fmt}"] = res.counters.dram_bytes
                    row[f"eai_{fmt}"] = res.counters.effective_arithmetic_intensity
                    row[f"bw_util_{fmt}"] = res.timing.bandwidth_utilization
                rows.append(row)
        return rows
