"""One function per paper table/figure, returning structured result rows.

Every function is pure given its inputs and returns ``list[dict]`` rows
that the ``benchmarks/`` files print, persist as CSV, and assert the
paper's qualitative shape on. EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.bro_ell import BROELLMatrix
from ..core.bro_hyb import BROHYBMatrix
from ..core.compression import index_compression_report
from ..exec.policy import ExecutionPolicy
from ..formats.coo import COOMatrix
from ..formats.ellpack import ELLPACKMatrix
from ..gpu.device import DEVICES
from ..matrices.analysis import analyze
from ..matrices.suite import TABLE2, test_set_1, test_set_2
from ..reorder import (
    amd_permutation,
    bar_permutation,
    rcm_permutation,
)
from .harness import ExperimentGrid, bench_scale, cached_format, cached_matrix, spmv_once

__all__ = [
    "table1_devices",
    "table2_suite",
    "table3_savings",
    "table4_hyb_split",
    "table5_bar_savings",
    "fig3_savings_sweep",
    "fig4_bro_ell",
    "fig5_eai",
    "fig6_bandwidth",
    "fig7_bro_coo",
    "fig8_bro_hyb",
    "fig9_reordering",
    "wallclock_engines",
    "scale_bench",
]

_ALL_DEVICES = ("c2070", "gtx680", "k20")


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_devices() -> List[Dict]:
    """Table 1: the simulated device registry."""
    rows = []
    for key in _ALL_DEVICES:
        dev = DEVICES[key]
        rows.append(
            {
                "device": dev.name,
                "compute_capability": dev.compute_capability,
                "cores": dev.cores,
                "mem_bw_gbps": dev.peak_bw_gbps,
                "dp_gflops": dev.dp_gflops,
                "measured_bw_gbps": dev.measured_bw_gbps,
                "decode_gops": dev.decode_gops,
            }
        )
    return rows


def table2_suite(scale: float | None = None) -> List[Dict]:
    """Table 2: generated-suite statistics vs the paper's targets."""
    scale = bench_scale() if scale is None else scale
    rows = []
    for name, spec in TABLE2.items():
        stats = analyze(cached_matrix(name, scale), name)
        rows.append(
            {
                "matrix": name,
                "test_set": spec.test_set,
                "rows": stats.rows,
                "cols": stats.cols,
                "nnz": stats.nnz,
                "mu": stats.mu,
                "mu_paper": spec.mu,
                "sigma": stats.sigma,
                "sigma_paper": spec.sigma,
            }
        )
    return rows


def table3_savings(scale: float | None = None, h: int = 256) -> List[Dict]:
    """Table 3: BRO-ELL index space savings on Test Set 1."""
    scale = bench_scale() if scale is None else scale
    rows = []
    for name in test_set_1():
        bro = cached_format(name, scale, "bro_ell", h)
        assert isinstance(bro, BROELLMatrix)
        report = index_compression_report(bro, name)
        rows.append(
            {
                "matrix": name,
                "eta_pct": 100.0 * report.eta,
                "kappa": report.kappa,
                "original_bytes": report.original_index_bytes,
                "compressed_bytes": report.compressed_index_bytes,
            }
        )
    return rows


def table4_hyb_split(scale: float | None = None, h: int = 256) -> List[Dict]:
    """Table 4: BRO-HYB partition fractions and space savings, Test Set 2."""
    scale = bench_scale() if scale is None else scale
    rows = []
    for name in test_set_2():
        bro = cached_format(name, scale, "bro_hyb", h)
        assert isinstance(bro, BROHYBMatrix)
        report = index_compression_report(bro, name)
        rows.append(
            {
                "matrix": name,
                "pct_bro_ell": 100.0 * bro.ell_fraction,
                "eta_pct": 100.0 * report.eta,
            }
        )
    return rows


def table5_bar_savings(
    scale: float | None = None, h: int = 256, alpha: int = 32
) -> List[Dict]:
    """Table 5: space savings after BAR reordering, Test Set 1."""
    scale = bench_scale() if scale is None else scale
    rows = []
    for name in test_set_1():
        coo = cached_matrix(name, scale)
        before = index_compression_report(
            BROELLMatrix.from_coo(coo, h=h), name
        ).eta
        perm = bar_permutation(coo, h=h, alpha=alpha)
        after = index_compression_report(
            BROELLMatrix.from_coo(coo.permute_rows(perm), h=h), name
        ).eta
        rows.append(
            {
                "matrix": name,
                "eta_before_pct": 100.0 * before,
                "eta_after_pct": 100.0 * after,
                "delta_pp": 100.0 * (after - before),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def fig3_savings_sweep(
    m: int = 8192,
    k: int = 64,
    bit_widths: Sequence[int] = (32, 28, 24, 20, 16, 12, 8, 4, 2, 1),
    devices: Sequence[str] = _ALL_DEVICES,
    h: int = 256,
) -> List[Dict]:
    """Fig. 3: BRO-ELL GFlop/s vs index space savings on a dense matrix.

    A dense matrix (delta = 1 everywhere) lets the per-index width be
    forced to ``b`` bits, i.e. space savings ``eta = 1 - b/32``, without
    touching anything else — exactly the paper's methodology.
    """
    rng = np.random.default_rng(0)
    rows_idx = np.repeat(np.arange(m), k)
    cols_idx = np.tile(np.arange(k), m)
    dense = COOMatrix(rows_idx, cols_idx, rng.standard_normal(m * k), (m, k))
    x = rng.standard_normal(k)
    ell = ELLPACKMatrix.from_coo(dense)
    bro = BROELLMatrix.from_coo(dense, h=h)
    out: List[Dict] = []
    for dev in devices:
        ell_gflops = spmv_once(ell, dev, x).gflops
        for bits in bit_widths:
            forced = bro.with_uniform_width(bits)
            res = spmv_once(forced, dev, x)
            out.append(
                {
                    "device": DEVICES[dev].name,
                    "device_key": dev,
                    "bits": bits,
                    "eta_pct": 100.0 * (1.0 - bits / 32.0),
                    "gflops": res.gflops,
                    "ellpack_gflops": ell_gflops,
                    "speedup": res.gflops / ell_gflops,
                }
            )
    return out


def fig3_break_even(rows: List[Dict]) -> Dict[str, float]:
    """Interpolate each device's break-even space savings from Fig. 3 rows."""
    out: Dict[str, float] = {}
    for dev in {r["device_key"] for r in rows}:
        series = sorted(
            (r for r in rows if r["device_key"] == dev), key=lambda r: r["eta_pct"]
        )
        eta = np.array([r["eta_pct"] for r in series])
        ratio = np.array([r["speedup"] for r in series])
        # First crossing of speedup = 1.
        out[dev] = float(np.interp(1.0, ratio, eta))
    return out


def fig4_bro_ell(
    scale: float | None = None,
    devices: Sequence[str] = _ALL_DEVICES,
    matrices: Sequence[str] | None = None,
    h: int = 256,
) -> List[Dict]:
    """Fig. 4: BRO-ELL vs ELLPACK and ELLPACK-R across Test Set 1."""
    scale = bench_scale() if scale is None else scale
    grid = ExperimentGrid(
        matrices=list(matrices or test_set_1()),
        formats=("ellpack", "ellpack_r", "bro_ell"),
        devices=tuple(devices),
        scale=scale,
        h=h,
    )
    rows = grid.run()
    for row in rows:
        row["speedup_vs_ellpack"] = row["gflops_bro_ell"] / row["gflops_ellpack"]
        row["speedup_vs_ellpack_r"] = row["gflops_bro_ell"] / row["gflops_ellpack_r"]
    return rows


def fig5_eai(
    scale: float | None = None, device: str = "k20", h: int = 256
) -> List[Dict]:
    """Fig. 5: effective arithmetic intensity, ELLPACK vs BRO-ELL on K20."""
    rows = fig4_bro_ell(scale=scale, devices=(device,), h=h)
    return [
        {
            "matrix": r["matrix"],
            "eai_ellpack": r["eai_ellpack"],
            "eai_bro_ell": r["eai_bro_ell"],
            "eai_ratio": r["eai_bro_ell"] / r["eai_ellpack"],
        }
        for r in rows
    ]


def fig6_bandwidth(
    scale: float | None = None,
    devices: Sequence[str] = _ALL_DEVICES,
    h: int = 256,
) -> List[Dict]:
    """Fig. 6: BRO-ELL DRAM bandwidth utilization, first six matrices."""
    first_six = test_set_1()[:6]
    rows = fig4_bro_ell(scale=scale, devices=devices, matrices=first_six, h=h)
    return [
        {
            "matrix": r["matrix"],
            "device": r["device"],
            "device_key": r["device_key"],
            "bw_utilization": r["bw_util_bro_ell"],
        }
        for r in rows
    ]


def fig7_bro_coo(
    scale: float | None = None,
    devices: Sequence[str] = _ALL_DEVICES,
    matrices: Sequence[str] | None = None,
) -> List[Dict]:
    """Fig. 7: BRO-COO vs COO across all thirty matrices."""
    scale = bench_scale() if scale is None else scale
    grid = ExperimentGrid(
        matrices=list(matrices or (test_set_1() + test_set_2())),
        formats=("coo", "bro_coo"),
        devices=tuple(devices),
        scale=scale,
    )
    rows = grid.run()
    for row in rows:
        row["speedup_vs_coo"] = row["gflops_bro_coo"] / row["gflops_coo"]
    return rows


def fig8_bro_hyb(
    scale: float | None = None,
    devices: Sequence[str] = ("k20",),
    h: int = 256,
) -> List[Dict]:
    """Fig. 8: BRO-HYB vs HYB on Test Set 2 (paper shows K20)."""
    scale = bench_scale() if scale is None else scale
    grid = ExperimentGrid(
        matrices=test_set_2(),
        formats=("hyb", "bro_hyb"),
        devices=tuple(devices),
        scale=scale,
        h=h,
    )
    rows = grid.run()
    for row in rows:
        row["speedup_vs_hyb"] = row["gflops_bro_hyb"] / row["gflops_hyb"]
    return rows


def fig9_reordering(
    scale: float | None = None,
    device: str = "k20",
    h: int = 256,
    matrices: Sequence[str] | None = None,
) -> List[Dict]:
    """Fig. 9: BAR vs RCM vs AMD reordering, BRO-ELL GFlop/s on Test Set 1."""
    scale = bench_scale(0.02) if scale is None else scale
    out: List[Dict] = []
    for name in matrices or test_set_1():
        coo = cached_matrix(name, scale)
        x = np.random.default_rng(7).standard_normal(coo.shape[1])
        ell = spmv_once(ELLPACKMatrix.from_coo(coo), device, x).gflops
        base = spmv_once(BROELLMatrix.from_coo(coo, h=h), device, x).gflops
        row: Dict = {
            "matrix": name,
            "gflops_ellpack": ell,
            "gflops_bro_ell": base,
        }
        for label, fn in (
            ("bar", lambda c: bar_permutation(c, h=h)),
            ("rcm", rcm_permutation),
            ("amd", amd_permutation),
        ):
            perm = fn(coo)
            reordered = coo.permute_rows(perm)
            res = spmv_once(BROELLMatrix.from_coo(reordered, h=h), device, x[:])
            row[f"gflops_{label}"] = res.gflops
            row[f"{label}_gain_pct"] = 100.0 * (res.gflops / base - 1.0)
        out.append(row)
    return out


# ----------------------------------------------------------------------
# Host wall-clock: prepared-plan engine vs reference engine
# ----------------------------------------------------------------------
def _time_repeat(fn, repeats: int) -> float:
    """Average wall-clock seconds of ``repeats`` calls of ``fn``."""
    import time

    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def _spd_system(name: str, scale: float):
    """A small SPD system derived from a suite matrix (for the CG rows).

    Symmetrize and make strictly diagonally dominant — SPD by Gershgorin —
    without a dense matmul, so the construction stays cheap in CI.
    """
    d = cached_matrix(name, scale).to_dense()
    s = 0.5 * (d + d.T)
    np.fill_diagonal(s, s.diagonal() + np.abs(s).sum(axis=1) + 1.0)
    return COOMatrix.from_dense(s)


def _executor_backends() -> List[str]:
    """The executor backends this host can actually run compiled."""
    from ..kernels.backends import jit_available

    return ["numpy", "jit"] if jit_available() else ["numpy"]


def wallclock_engines(
    scale: float | None = None,
    matrices: Sequence[str] = ("dense2", "epb3"),
    formats: Sequence[str] = ("bro_ell", "bro_hyb", "sell_c_sigma", "cmrs",
                              "bro_sell"),
    device: str = "k20",
    h: int = 256,
    repeats: int = 5,
    spmm_k: int = 8,
    cg_iters: int = 50,
) -> List[Dict]:
    """Host wall-clock of the prepared-plan engine vs the reference engine.

    Unlike every other experiment this one measures *our* time, not the
    simulated device's: plan-build seconds, per-call replay seconds, and
    the speedup over re-decoding with the stepwise kernels. Three modes
    per (matrix, format): a single-vector SpMV, a ``spmm_k``-column SpMM
    block, and a ``cg_iters``-iteration :class:`SimulatedOperator` CG
    solve on an SPD system derived from the matrix (built at
    ``min(scale, 0.02)`` so the dense symmetrization stays small).

    Every row carries a ``backend`` column. The spmv/spmm modes run once
    per available executor backend (``numpy`` always; ``jit`` when Numba
    is importable, with the warm-compile inside ``build_time_ms``), and
    the :func:`microbench_exec` inner-loop rows are appended at the end
    so one report records the whole compiled-path trajectory.
    """
    import time

    from ..formats.conversion import convert
    from ..kernels.dispatch import run_spmm, run_spmv
    from ..kernels.plan import prepare
    from ..kernels.plancache import PlanCache
    from ..solvers.cg import conjugate_gradient
    from ..solvers.operators import SimulatedOperator

    scale = bench_scale() if scale is None else scale
    backends = _executor_backends()
    rows: List[Dict] = []
    for name in matrices:
        for fmt in formats:
            mat = cached_format(name, scale, fmt, h)
            n = mat.shape[1]
            x = np.random.default_rng(12345).standard_normal(n)
            X = np.random.default_rng(99).standard_normal((n, spmm_k))

            ref_policy = ExecutionPolicy(engine="reference")
            ref_spmv = _time_repeat(
                lambda: run_spmv(mat, x, device, policy=ref_policy), repeats
            )
            ref_spmm = _time_repeat(
                lambda: run_spmm(mat, X, device, policy=ref_policy),
                max(1, repeats // 2),
            )

            for backend in backends:
                t0 = time.perf_counter()
                plan = prepare(mat, device, backend=backend)
                build_time = time.perf_counter() - t0

                fast_spmv = _time_repeat(lambda: plan.execute(x), repeats)
                rows.append(
                    {
                        "matrix": name,
                        "format": fmt,
                        "mode": "spmv",
                        "backend": backend,
                        "build_time_ms": 1e3 * build_time,
                        "ref_time_ms": 1e3 * ref_spmv,
                        "fast_time_ms": 1e3 * fast_spmv,
                        "speedup": ref_spmv / fast_spmv,
                    }
                )

                fast_spmm = _time_repeat(
                    lambda: plan.execute_many(X), max(1, repeats // 2)
                )
                rows.append(
                    {
                        "matrix": name,
                        "format": fmt,
                        "mode": f"spmm{spmm_k}",
                        "backend": backend,
                        "build_time_ms": 1e3 * build_time,
                        "ref_time_ms": 1e3 * ref_spmm,
                        "fast_time_ms": 1e3 * fast_spmm,
                        "speedup": ref_spmm / fast_spmm,
                    }
                )

        # CG on an SPD system built from the matrix: the acceptance case —
        # one decode amortized over a many-iteration operator-driven solve.
        spd = _spd_system(name, min(scale, 0.02))
        from .. import registry as _registry

        kwargs = {"h": h} if _registry.get_spec(formats[0]).accepts("h") else {}
        spd_mat = convert(spd, formats[0], **kwargs)
        b = np.ones(spd_mat.shape[1])

        op_ref = SimulatedOperator(
            spd_mat, device, policy=ExecutionPolicy(engine="reference")
        )
        t0 = time.perf_counter()
        conjugate_gradient(op_ref, b, tol=0.0, max_iter=cg_iters)
        ref_cg = time.perf_counter() - t0

        cache = PlanCache()
        op_fast = SimulatedOperator(
            spd_mat, device, policy=ExecutionPolicy(plan_cache=cache)
        )
        t0 = time.perf_counter()
        conjugate_gradient(op_fast, b, tol=0.0, max_iter=cg_iters)
        fast_cg = time.perf_counter() - t0

        # The first fast iteration built the plan (its cost is inside
        # fast_cg); fetch it back from the cache to report the build time.
        cg_plan = cache.get_or_build(spd_mat, device)
        rows.append(
            {
                "matrix": name,
                "format": formats[0],
                "mode": f"cg{cg_iters}",
                "backend": "numpy",
                "build_time_ms": 1e3 * cg_plan.build_seconds,
                "ref_time_ms": 1e3 * ref_cg,
                "fast_time_ms": 1e3 * fast_cg,
                "speedup": ref_cg / fast_cg,
            }
        )
    rows.extend(microbench_exec())
    return rows


# ----------------------------------------------------------------------
# Executor inner-loop microbenchmarks (numpy vs the compiled kernels)
# ----------------------------------------------------------------------
def microbench_exec(
    m: int = 4096,
    k: int = 24,
    density: float = 0.004,
    repeats: int = 5,
    seed: int = 7,
) -> List[Dict]:
    """Microbenchmark the executor's fused inner loops against NumPy.

    For each compiled kernel family — the ELL gather+mask+segmented
    reduce, the COO element-ordered scatter, the CSR row sums and the
    ELLPACK column accumulation — time the vectorized NumPy replay
    against the :mod:`repro.kernels.backends` kernel on one synthetic
    matrix. With Numba importable the kernel rows are the compiled loops
    (``backend="jit"``, warm-compiled before timing); without it they are
    the pure-Python twins (``backend="python"``) — slower than NumPy by
    construction, kept because they pin the loop order the jit path
    compiles. Rows use a ``ratio`` column (numpy time / kernel time, >1
    means the kernel wins) rather than ``speedup`` so the wallclock
    ``--min-speedup`` gate never fails on a Numba-free host.
    """
    import time

    from ..kernels import backends as _bk
    from ..types import VALUE_DTYPE

    rng = np.random.default_rng(seed)
    nnz_per_row = max(1, int(density * m))
    backend = "jit" if _bk.jit_available() else "python"
    if backend == "python":
        # The interpreted twins are O(python-op) per nnz; shrink the
        # problem so the microbench stays fast on Numba-free hosts.
        m, k = min(m, 512), min(k, 8)

    # Shared synthetic operands ---------------------------------------
    x = rng.standard_normal(m)
    rows_out: List[Dict] = []

    def _bench(mode: str, fmt: str, numpy_fn, kernel_fn) -> None:
        numpy_fn()  # warm both paths (jit: triggers compilation)
        kernel_fn()
        t_numpy = _time_repeat(numpy_fn, repeats)
        t_kernel = _time_repeat(kernel_fn, repeats)
        rows_out.append(
            {
                "matrix": "synthetic",
                "format": fmt,
                "mode": mode,
                "backend": backend,
                "ref_time_ms": 1e3 * t_numpy,
                "fast_time_ms": 1e3 * t_kernel,
                "ratio": t_numpy / t_kernel if t_kernel > 0 else 0.0,
            }
        )

    # ELL slice: gather + validity mask + segmented (per-row) reduce ---
    vals_t = rng.standard_normal((k, m))
    gather_t = rng.integers(0, m, size=(k, m))
    valid_t = rng.random((k, m)) < 0.7
    vals_t[~valid_t] = 0.0
    y = np.zeros(m, dtype=VALUE_DTYPE)

    def ell_numpy():
        acc = np.zeros(m, dtype=VALUE_DTYPE)
        for c in range(k):
            acc += np.where(valid_t[c], vals_t[c] * x[gather_t[c]], 0.0)
        return acc

    _bench(
        "micro:gather_reduce", "bro_ell",
        ell_numpy,
        lambda: _bk.ell_slice_spmv(vals_t, gather_t, valid_t, x, y),
    )

    # COO: element-ordered scatter -------------------------------------
    nnz = m * nnz_per_row
    coo_rows = np.sort(rng.integers(0, m, size=nnz))
    coo_cols = rng.integers(0, m, size=nnz)
    coo_vals = rng.standard_normal(nnz)

    def coo_numpy():
        acc = np.zeros(m, dtype=VALUE_DTYPE)
        np.add.at(acc, coo_rows, coo_vals * x[coo_cols])
        return acc

    def coo_kernel():
        y[:] = 0.0
        _bk.coo_scatter_spmv(coo_rows, coo_cols, coo_vals, x, y)

    _bench("micro:scatter", "bro_coo", coo_numpy, coo_kernel)

    # CSR: zero-initialised sequential row sums ------------------------
    lengths = rng.integers(1, 2 * nnz_per_row + 1, size=m)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    csr_indices = rng.integers(0, m, size=int(indptr[-1]))
    csr_vals = rng.standard_normal(int(indptr[-1]))
    schedule = _bk.csr_column_schedule(indptr)

    _bench(
        "micro:row_sums", "csr",
        lambda: _bk.csr_spmv_columns(csr_indices, csr_vals, x, schedule, m),
        lambda: _bk.csr_spmv(indptr, csr_indices, csr_vals, x, y),
    )

    # ELLPACK: column-sequential accumulation --------------------------
    col_idx_t = rng.integers(0, m, size=(k, m))
    ell_vals_t = rng.standard_normal((k, m))

    def ellpack_numpy():
        acc = np.zeros(m, dtype=VALUE_DTYPE)
        for c in range(k):
            acc += ell_vals_t[c] * x[col_idx_t[c]]
        return acc

    _bench(
        "micro:column_acc", "ellpack",
        ellpack_numpy,
        lambda: _bk.ellpack_spmv(col_idx_t, ell_vals_t, x, y),
    )
    return rows_out


# ----------------------------------------------------------------------
# Scale bench: per-device-count wallclock + latency percentiles
# ----------------------------------------------------------------------
def scale_bench(
    scale: float | None = None,
    matrices: Sequence[str] = ("cant",),
    format_name: str = "csr",
    device: str = "k20",
    devices: Sequence[int] = (1, 2, 4),
    repeats: int = 3,
) -> List[Dict]:
    """Per-device-count scaling rows: modeled speedup + measured latency.

    Two kinds of columns per (matrix, device-count) row:

    * ``speedup``/``efficiency`` — the *modeled* strong-scaling numbers
      (deterministic, so they gate regressions in ``repro bench
      --compare``);
    * ``wallclock_ms`` and ``p50_ms``/``p95_ms``/``p99_ms`` — *measured*
      host wall-clock of the process backend and the exact percentiles of
      the per-shard latency histograms
      (``exec.shard_latency_seconds{worker=...}``). Their column names
      deliberately match no :func:`~repro.telemetry.benchreport.metric_direction`
      fragment, so they are recorded and compared informationally but
      never fail CI on noisy hardware.
    """
    import time

    from ..exec.engine import execute_sharded, shutdown_pools
    from ..exec.scaling import strong_scaling
    from ..kernels.dispatch import run_spmv
    from ..telemetry.metrics import (
        LATENCY_BUCKETS,
        Histogram,
        MetricsRegistry,
        start_collecting,
        stop_collecting,
    )

    scale = bench_scale() if scale is None else scale
    counts = sorted({int(n) for n in devices})
    rows: List[Dict] = []
    for name in matrices:
        mat = cached_format(name, scale, format_name)
        x = np.random.default_rng(12345).standard_normal(mat.shape[1])
        modeled = {
            r["devices"]: r
            for r in strong_scaling(mat, device, counts, backend="thread")
        }
        for n in counts:
            reg = MetricsRegistry()
            start_collecting(reg)
            try:
                t0 = time.perf_counter()
                for _ in range(repeats):
                    if n == 1:
                        run_spmv(mat, x, device, policy=ExecutionPolicy())
                    else:
                        execute_sharded(
                            mat, x, device,
                            ExecutionPolicy(devices=n, backend="process"),
                        )
                wallclock = (time.perf_counter() - t0) / repeats
            finally:
                stop_collecting()
                if n > 1:
                    shutdown_pools(mat)
            snap = reg.snapshot()
            merged = Histogram(LATENCY_BUCKETS)
            for key, h in snap["histograms"].items():
                if key.startswith("exec.shard_latency_seconds"):
                    merged.merge_dict(h)
            if merged.count == 0:
                # Single-device path records no shard latency; the call
                # wallclock is the whole distribution.
                merged.observe(wallclock)
            rows.append(
                {
                    "matrix": name,
                    "devices": n,
                    "backend": "process" if n > 1 else "single",
                    "speedup": modeled[n]["speedup"],
                    "efficiency": modeled[n]["efficiency"],
                    "wallclock_ms": 1e3 * wallclock,
                    "p50_ms": 1e3 * merged.percentile(50),
                    "p95_ms": 1e3 * merged.percentile(95),
                    "p99_ms": 1e3 * merged.percentile(99),
                }
            )
    return rows
