"""Row-length sorting (the Sliced-ELLPACK heuristic of Monakov et al.).

Groups rows of similar length so each slice's width matches its rows —
a reordering baseline that targets padding, not compressibility.
"""

from __future__ import annotations

import numpy as np

from ..formats.coo import COOMatrix
from .base import check_permutation

__all__ = ["rowsort_permutation"]


def rowsort_permutation(coo: COOMatrix, descending: bool = True) -> np.ndarray:
    """Sort rows by length (stable, so ties keep their original locality)."""
    lengths = coo.row_lengths()
    key = -lengths if descending else lengths
    return check_permutation(np.argsort(key, kind="stable"), coo.shape[0])
