"""BRO-aware reordering (BAR) — Algorithm 2 of the paper.

The rows of the delta-encoded index array are greedily clustered into
``v = ceil(m / h)`` equal-size clusters (cluster = future BRO-ELL slice)
minimizing the memory-transaction objective of Eqn. (1): clusters are
seeded with rows spaced ``h`` apart in row-length order, then each
remaining row goes to the cluster whose cost it increases least, subject
to the equi-partition capacity.

Implementation notes
--------------------
The greedy needs the *incremental* cost of adding a row to every cluster.
The bit-width term is exact and vectorized over clusters (per-cluster
running column maxima). The cacheline term ``c`` (Eqn. 3) needs per-column
*distinct-line* sets; storing a real set per (cluster, column) would make
the inner loop Python-bound, so membership is tracked in a 1024-bit hashed
bitmap per (cluster, column) — line ``l`` maps to bit ``l mod 1024``.
Collisions can only *undercount* new lines (they make BAR slightly
over-eager to group far-apart rows); with h = 256 rows per cluster the
bitmap is at most quarter-full and the approximation error is marginal.
The exact objective (:func:`repro.reorder.objective.bar_objective`) is used
in the test-suite to confirm BAR lowers Eqn. (1) versus the identity order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReorderingError
from ..formats.coo import COOMatrix
from ..utils.bits import ceil_div
from .base import check_permutation
from .objective import delta_rows_for_bar

__all__ = ["bar_permutation", "BARReordering"]

_BITMAP_BITS = 1024
_BITMAP_WORDS = _BITMAP_BITS // 64


@dataclass
class BARReordering:
    """Result of a BAR run: the permutation plus diagnostic cluster sizes."""

    perm: np.ndarray
    cluster_sizes: np.ndarray
    v: int
    h: int


def bar_permutation(
    coo: COOMatrix,
    h: int = 256,
    alpha: int = 32,
    w: int = 32,
    cache_weight: float = 1.0,
) -> np.ndarray:
    """Compute the BAR gather permutation for a matrix (Algorithm 2).

    Parameters
    ----------
    coo:
        The matrix to reorder.
    h:
        Slice height (cluster capacity); the paper uses the thread-block
        size, 256.
    alpha:
        Symbol length of the packed stream in bits (Eqn. 1's alpha).
    w:
        Warp size (only scales the objective; kept for fidelity).
    cache_weight:
        Weight of the cacheline term; ``0.0`` ablates Eqn. (3) (used by
        the ablation benchmark), ``1.0`` is the paper's objective.

    Returns
    -------
    numpy.ndarray
        Gather permutation: row ``perm[i]`` of ``coo`` becomes row ``i``.
    """
    return bar_reordering(coo, h=h, alpha=alpha, w=w, cache_weight=cache_weight).perm


def bar_reordering(
    coo: COOMatrix,
    h: int = 256,
    alpha: int = 32,
    w: int = 32,
    cache_weight: float = 1.0,
) -> BARReordering:
    """Like :func:`bar_permutation` but returns diagnostics too."""
    if h <= 0 or alpha <= 0 or w <= 0:
        raise ReorderingError("h, alpha and w must be positive")
    m = coo.shape[0]
    bits, lines, _valid = delta_rows_for_bar(coo)
    K = bits.shape[1]
    v = max(1, ceil_div(m, h))

    # Capacities sum to m, so the greedy necessarily fills every cluster
    # exactly: cluster boundaries coincide with slice boundaries.
    caps = np.full(v, h, dtype=np.int64)
    caps[-1] = m - (v - 1) * h if m > (v - 1) * h else h

    # Line 2: sort rows by row length; seeds are spaced h apart.
    lengths = coo.row_lengths()
    order = np.argsort(-lengths, kind="stable")
    seed_positions = np.arange(v) * h
    seed_positions = seed_positions[seed_positions < m]
    seeds = order[seed_positions]
    is_seed = np.zeros(m, dtype=bool)
    is_seed[seeds] = True
    rest = order[~is_seed[order]]

    # Cluster state.
    D = np.zeros((v, K), dtype=np.int64)  # per-column max bit widths
    Sd = np.zeros(v, dtype=np.int64)  # sum_j d(S, j)
    bitmap = np.zeros((v, K, _BITMAP_WORDS), dtype=np.uint64)
    sizes = np.zeros(v, dtype=np.int64)
    assignment = np.empty(m, dtype=np.int64)

    col_ar = np.arange(K)

    def insert(t: int, r: int) -> None:
        row_bits = bits[r]
        D[t] = np.maximum(D[t], row_bits)
        Sd[t] = int(D[t].sum())
        row_lines = lines[r]
        ok = row_lines >= 0
        pos = (row_lines[ok] % _BITMAP_BITS).astype(np.int64)
        words, bit_pos = pos // 64, pos % 64
        np.bitwise_or.at(
            bitmap[t], (col_ar[ok], words), np.uint64(1) << bit_pos.astype(np.uint64)
        )
        sizes[t] += 1
        assignment[r] = t

    for t, r in enumerate(seeds):  # lines 3-6
        insert(t, int(r))

    for r in rest:  # lines 7-13
        row_bits = bits[r]
        inc = np.maximum(row_bits[np.newaxis, :] - D, 0).sum(axis=1)
        # ceil((Sd + inc) / alpha) - ceil(Sd / alpha)
        stream_cost = (Sd + inc + alpha - 1) // alpha - (Sd + alpha - 1) // alpha

        row_lines = lines[r]
        ok = row_lines >= 0
        if cache_weight > 0.0 and np.any(ok):
            pos = (row_lines[ok] % _BITMAP_BITS).astype(np.int64)
            words, bit_pos = pos // 64, pos % 64
            present = (
                bitmap[:, col_ar[ok], words] >> bit_pos.astype(np.uint64)
            ) & np.uint64(1)
            new_lines = (present == 0).sum(axis=1)
        else:
            new_lines = np.zeros(v, dtype=np.int64)

        cost = stream_cost + cache_weight * new_lines
        cost = np.where(sizes < caps, cost, np.inf)
        insert(int(np.argmin(cost)), int(r))

    # Clusters in index order become consecutive row blocks (slices).
    perm = np.concatenate(
        [np.flatnonzero(assignment == t) for t in range(v)]
    )
    return BARReordering(
        perm=check_permutation(perm, m), cluster_sizes=sizes.copy(), v=v, h=h
    )
