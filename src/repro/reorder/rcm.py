"""Reverse Cuthill–McKee ordering (from scratch; George & Liu [9]).

Classic bandwidth-reducing ordering: BFS from a pseudo-peripheral vertex,
visiting neighbours in increasing-degree order, then reverse. Works on the
symmetrized sparsity pattern (the structural graph of ``A + A^T``), which
is the standard treatment for unsymmetric matrices.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReorderingError
from ..formats.coo import COOMatrix
from .base import check_permutation

__all__ = ["rcm_permutation", "symmetric_adjacency"]


def symmetric_adjacency(coo: COOMatrix) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency (indptr, indices) of the pattern of ``A + A^T``.

    Off-square matrices use the row-connectivity graph of ``A A^T``'s
    pattern approximated by linking rows through shared columns' diagonal
    projection; for the (square) matrices the paper reorders this is simply
    the symmetrized pattern without self-loops.
    """
    m, n = coo.shape
    if m != n:
        raise ReorderingError("RCM/AMD operate on square matrices")
    r = np.concatenate([coo.row_idx, coo.col_idx]).astype(np.int64)
    c = np.concatenate([coo.col_idx, coo.row_idx]).astype(np.int64)
    off = r != c
    r, c = r[off], c[off]
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    if r.size:
        keep = np.concatenate([[True], (r[1:] != r[:-1]) | (c[1:] != c[:-1])])
        r, c = r[keep], c[keep]
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(r, minlength=m), out=indptr[1:])
    return indptr, c


def _pseudo_peripheral(
    start: int, indptr: np.ndarray, indices: np.ndarray, degrees: np.ndarray
) -> int:
    """Find a pseudo-peripheral vertex by repeated BFS (George–Liu)."""
    node = start
    last_ecc = -1
    for _ in range(8):  # converges in a few sweeps
        levels = _bfs_levels(node, indptr, indices)
        ecc = int(levels.max())
        if ecc <= last_ecc:
            return node
        last_ecc = ecc
        frontier = np.flatnonzero(levels == ecc)
        node = int(frontier[np.argmin(degrees[frontier])])
    return node


def _bfs_levels(start: int, indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    m = indptr.shape[0] - 1
    levels = np.full(m, -1, dtype=np.int64)
    levels[start] = 0
    frontier = np.array([start], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neigh = np.concatenate(
            [indices[indptr[u] : indptr[u + 1]] for u in frontier]
        ) if frontier.size else np.zeros(0, np.int64)
        neigh = np.unique(neigh)
        neigh = neigh[levels[neigh] == -1]
        levels[neigh] = level
        frontier = neigh
    # Unreached vertices (other components) keep -1; callers handle them.
    levels[levels == -1] = 0 if m == 1 else levels.max(initial=0)
    return levels


def rcm_permutation(coo: COOMatrix) -> np.ndarray:
    """Compute the Reverse Cuthill–McKee gather permutation."""
    m = coo.shape[0]
    indptr, indices = symmetric_adjacency(coo)
    degrees = np.diff(indptr)

    visited = np.zeros(m, dtype=bool)
    ordering = np.empty(m, dtype=np.int64)
    pos = 0
    # Process components, lowest-degree unvisited vertex first.
    by_degree = np.argsort(degrees, kind="stable")
    ptr = 0
    while pos < m:
        while ptr < m and visited[by_degree[ptr]]:
            ptr += 1
        start = int(by_degree[ptr])
        start = _pseudo_peripheral(start, indptr, indices, degrees)
        if visited[start]:  # peripheral search landed in a visited region
            start = int(by_degree[ptr])
        # Cuthill-McKee BFS with degree-ordered neighbour visits.
        visited[start] = True
        queue = [start]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            ordering[pos] = u
            pos += 1
            neigh = indices[indptr[u] : indptr[u + 1]]
            neigh = neigh[~visited[neigh]]
            if neigh.size:
                neigh = neigh[np.argsort(degrees[neigh], kind="stable")]
                visited[neigh] = True
                queue.extend(int(x) for x in neigh)
    return check_permutation(ordering[::-1].copy(), m)
