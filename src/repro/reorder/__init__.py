"""Matrix row reordering (paper Section 3.4).

* :mod:`~repro.reorder.objective` — the memory-transaction objective of
  Eqn. (1) with the bit-width term ``d`` (Eqn. 2) and the x-cacheline term
  ``c`` (Eqn. 3);
* :mod:`~repro.reorder.bar` — the BRO-aware reordering (BAR) greedy
  clustering of Algorithm 2;
* :mod:`~repro.reorder.rcm` — Reverse Cuthill–McKee (from scratch);
* :mod:`~repro.reorder.amd` — approximate minimum degree (from scratch);
* :mod:`~repro.reorder.rowsort` — row-length sorting (the Sliced-ELLPACK
  heuristic of Monakov et al., used as a further baseline).
"""

from .amd import amd_permutation
from .bar import BARReordering, bar_permutation
from .base import apply_reordering, identity_permutation, invert_permutation
from .metrics import OrderingMetrics, matrix_bandwidth, ordering_metrics, profile
from .objective import bar_objective, cluster_cost
from .rcm import rcm_permutation
from .rowsort import rowsort_permutation

__all__ = [
    "bar_permutation",
    "BARReordering",
    "rcm_permutation",
    "amd_permutation",
    "rowsort_permutation",
    "bar_objective",
    "OrderingMetrics",
    "ordering_metrics",
    "matrix_bandwidth",
    "profile",
    "cluster_cost",
    "apply_reordering",
    "identity_permutation",
    "invert_permutation",
]
