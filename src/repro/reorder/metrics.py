"""Ordering-quality metrics: the classical numbers RCM/AMD optimize.

BAR optimizes Eqn. (1); RCM optimizes matrix *bandwidth*; AMD optimizes
(approximately) factorization fill. These metrics let the reordering
experiments report what each algorithm is actually good at, which is how
the paper explains why bandwidth-oriented orderings do not help BRO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.coo import COOMatrix
from ..utils.bits import bit_width_array

__all__ = ["OrderingMetrics", "ordering_metrics", "matrix_bandwidth", "profile"]


def matrix_bandwidth(coo: COOMatrix) -> int:
    """max |i - j| over stored entries (the quantity RCM minimizes)."""
    if coo.nnz == 0:
        return 0
    return int(
        np.abs(coo.row_idx.astype(np.int64) - coo.col_idx.astype(np.int64)).max()
    )


def profile(coo: COOMatrix) -> int:
    """Sum over rows of (row index - leftmost column), the envelope size."""
    if coo.nnz == 0:
        return 0
    m = coo.shape[0]
    leftmost = np.full(m, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(leftmost, coo.row_idx, coo.col_idx.astype(np.int64))
    rows = np.flatnonzero(leftmost != np.iinfo(np.int64).max)
    return int(np.maximum(rows - leftmost[rows], 0).sum())


@dataclass(frozen=True)
class OrderingMetrics:
    """Quality numbers of one row ordering."""

    bandwidth: int  #: RCM's objective
    profile: int  #: envelope size
    mean_delta_bits: float  #: what BRO compression responds to
    eta: float  #: resulting BRO-ELL space savings


def ordering_metrics(coo: COOMatrix, h: int = 256) -> OrderingMetrics:
    """Compute all ordering metrics for a matrix (in its current order)."""
    from ..core.bro_ell import BROELLMatrix
    from ..core.compression import index_compression_report

    lengths = coo.row_lengths()
    mean_bits = 0.0
    if coo.nnz:
        cols = coo.col_idx.astype(np.int64)
        starts = np.zeros(coo.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        deltas = np.empty(coo.nnz, dtype=np.int64)
        deltas[0] = cols[0] + 1
        deltas[1:] = cols[1:] - cols[:-1]
        first = starts[:-1][lengths > 0]
        deltas[first] = cols[first] + 1
        mean_bits = float(bit_width_array(deltas).mean())
    eta = 0.0
    if coo.nnz:
        eta = index_compression_report(
            BROELLMatrix.from_coo(coo, h=h), "metrics"
        ).eta
    return OrderingMetrics(
        bandwidth=matrix_bandwidth(coo),
        profile=profile(coo),
        mean_delta_bits=mean_bits,
        eta=eta,
    )
