"""Approximate minimum degree ordering (from scratch; Amestoy et al. [1]).

A quotient-graph minimum-degree ordering with AMD's degree approximation:
eliminated vertices become *elements*; a live vertex's degree is
approximated by the size of its plain neighbourhood plus the sizes of its
adjacent elements (an upper bound on the true external degree, as in AMD).
Element absorption keeps adjacency lists compact.

This implementation favours clarity over the heavily engineered SuiteSparse
code; it orders the paper-scale (scaled) matrices in seconds and exhibits
the fill-reducing behaviour the paper compares BAR against.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..formats.coo import COOMatrix
from .base import check_permutation
from .rcm import symmetric_adjacency

__all__ = ["amd_permutation"]


def amd_permutation(coo: COOMatrix) -> np.ndarray:
    """Compute an approximate-minimum-degree gather permutation."""
    m = coo.shape[0]
    indptr, indices = symmetric_adjacency(coo)

    # Vertex state: plain-vertex neighbours and adjacent elements.
    neighbours = [set(indices[indptr[i] : indptr[i + 1]].tolist()) for i in range(m)]
    elements: list[set[int]] = [set() for _ in range(m)]  # adjacent element ids
    element_members: dict[int, set[int]] = {}  # element id -> live members
    eliminated = np.zeros(m, dtype=bool)

    def approx_degree(u: int) -> int:
        deg = len(neighbours[u])
        for e in elements[u]:
            deg += len(element_members[e])
        return deg

    heap = [(len(neighbours[u]), u) for u in range(m)]
    heapq.heapify(heap)

    ordering = np.empty(m, dtype=np.int64)
    pos = 0
    while heap:
        deg, u = heapq.heappop(heap)
        if eliminated[u]:
            continue
        current = approx_degree(u)
        if deg != current:
            # Stale heap entry (lazy deletion): reinsert at the fresh key.
            heapq.heappush(heap, (current, u))
            continue
        eliminated[u] = True
        ordering[pos] = u
        pos += 1

        # Form the new element: u's live neighbourhood.
        members = {v for v in neighbours[u] if not eliminated[v]}
        for e in elements[u]:
            members |= {v for v in element_members.pop(e) if not eliminated[v]}
        eid = u
        element_members[eid] = members

        # Prune plain neighbours now covered by the element only while the
        # element is small: the full AMD prune is O(|members|^2) per
        # elimination and dominates on banded matrices, while skipping it
        # merely loosens the (already approximate) degree upper bound.
        prune = len(members) <= 64
        for v in members:
            neighbours[v].discard(u)
            # Absorb u's old elements and point v at the new element.
            elements[v] -= elements[u]
            elements[v].add(eid)
            if prune:
                neighbours[v] -= members
        # Member degrees are revalidated lazily at pop time instead of
        # eagerly re-pushed here: eager pushes cost |members| heap inserts
        # per elimination and dominate on banded matrices.
    return check_permutation(ordering, m)
