"""Permutation utilities shared by the reordering algorithms.

All reorderings in this package return a *gather* permutation ``perm``:
row ``perm[i]`` of the original matrix becomes row ``i`` of the reordered
matrix (``A' = P A``, matching :meth:`repro.formats.coo.COOMatrix.permute_rows`).
The product is recovered as ``y = P^T y'`` — equivalently
``y[perm] = y'`` — which :func:`apply_reordering` documents.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReorderingError
from ..formats.coo import COOMatrix
from ..telemetry.tracer import span as _span

__all__ = ["identity_permutation", "invert_permutation", "apply_reordering",
           "check_permutation"]


def identity_permutation(m: int) -> np.ndarray:
    """The no-op ordering."""
    return np.arange(m, dtype=np.int64)


def check_permutation(perm: np.ndarray, m: int) -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``range(m)``; return int64."""
    perm = np.asarray(perm, dtype=np.int64).reshape(-1)
    if perm.shape[0] != m or not np.array_equal(np.sort(perm), np.arange(m)):
        raise ReorderingError(f"not a permutation of range({m})")
    return perm


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Return ``inv`` with ``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def apply_reordering(coo: COOMatrix, perm: np.ndarray) -> COOMatrix:
    """Return ``P @ A`` for the gather permutation ``perm``.

    The SpMV result of the reordered matrix satisfies
    ``(P A) @ x = P (A @ x)``, i.e. ``y_original[perm[i]] == y_reordered[i]``.
    """
    perm = check_permutation(perm, coo.shape[0])
    with _span("reorder.apply", "pipeline", rows=coo.shape[0], nnz=coo.nnz):
        return coo.permute_rows(perm)
