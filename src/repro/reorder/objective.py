"""The BAR clustering objective (paper Eqns. (1)–(3)).

For a partitioning of the delta-encoded rows into clusters
:math:`\\{S_t\\}`, the objective counts memory transactions:

.. math::

    \\Phi = \\sum_t \\frac{h}{w} \\Big( \\lceil \\tfrac{\\sum_j d(S_t, j)}{\\alpha}
    \\rceil + \\sum_j c(S_t, j) \\Big)

* :math:`d(S, j)` (Eqn. 2) — the maximum :math:`\\Gamma` bit width of the
  ``j``-th delta over the cluster's rows: the packed stream's per-column
  bit allocation, whose row sum divided by the symbol length ``alpha`` is
  the number of index-stream loads per thread;
* :math:`c(S, j)` (Eqn. 3) — the number of distinct x-vector cachelines
  the cluster's ``j``-th column indices touch. The paper's Eqn. (3) maps
  the delta values through :math:`\\Omega`; since ``x`` is addressed by the
  *reconstructed* column index we map the absolute indices (the intent of
  the formulation — spatial locality of ``x``).

The paper notes this model captures spatial but not temporal locality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReorderingError
from ..utils.bits import bit_width_array, ceil_div

__all__ = ["cluster_cost", "bar_objective", "delta_rows_for_bar"]


def delta_rows_for_bar(coo) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute the per-row data BAR clusters on.

    Returns ``(delta_bits, col_lines, valid)``: ``(m, k)`` arrays holding
    the Gamma bit width of each delta, the x-cacheline index of each
    absolute column, and the validity mask. Padding positions carry zero
    bits and line ``-1``.
    """
    from ..core.delta import delta_encode_columns
    from ..formats.ellpack import ellpack_arrays_from_coo

    col_idx, _vals, stored = ellpack_arrays_from_coo(coo)
    k = col_idx.shape[1]
    valid = np.arange(k)[np.newaxis, :] < stored[:, np.newaxis]
    deltas = delta_encode_columns(col_idx, valid)
    bits = np.where(valid, bit_width_array(deltas), 0).astype(np.int64)
    lines = np.where(valid, col_idx.astype(np.int64) // 4, -1)  # 32B / 8B
    return bits, lines, valid


def cluster_cost(
    bits: np.ndarray,
    lines: np.ndarray,
    alpha: int = 32,
    h: int = 256,
    w: int = 32,
) -> float:
    """Cost of one cluster: the parenthesized term of Eqn. (1) x ``h/w``.

    ``bits``/``lines`` are the cluster's rows of the precomputed
    :func:`delta_rows_for_bar` arrays.
    """
    bits = np.asarray(bits)
    lines = np.asarray(lines)
    if bits.ndim != 2 or bits.shape != lines.shape:
        raise ReorderingError("bits and lines must be equal-shape 2-D arrays")
    if bits.shape[0] == 0:
        return 0.0
    d = bits.max(axis=0)  # Eqn. (2): per-column max width
    stream_loads = ceil_div(int(d.sum()), alpha) if d.size else 0
    c = 0
    for j in range(lines.shape[1]):
        col = lines[:, j]
        col = col[col >= 0]
        if col.size:
            c += int(np.unique(col).shape[0])  # Eqn. (3)
    return (h / w) * (stream_loads + c)


def bar_objective(
    clusters: Sequence[np.ndarray],
    bits: np.ndarray,
    lines: np.ndarray,
    alpha: int = 32,
    h: int = 256,
    w: int = 32,
) -> float:
    """Eqn. (1): total cost of a partitioning.

    ``clusters`` is a sequence of row-index arrays into ``bits``/``lines``.
    """
    total = 0.0
    for rows in clusters:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size:
            total += cluster_cost(bits[rows], lines[rows], alpha, h, w)
    return total
