"""Argument-validation helpers shared across the library.

These raise :class:`repro.errors.ValidationError` with messages that name the
offending argument, so public entry points can validate inputs in one line
each without repeating boilerplate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ValidationError

__all__ = [
    "check_1d",
    "check_2d",
    "check_dtype",
    "check_positive",
    "check_in_range",
    "check_sorted_rows",
]


def check_1d(arr: np.ndarray, name: str) -> np.ndarray:
    """Ensure ``arr`` is a one-dimensional ndarray; return it."""
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_2d(arr: np.ndarray, name: str) -> np.ndarray:
    """Ensure ``arr`` is a two-dimensional ndarray; return it."""
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_dtype(arr: np.ndarray, dtype: np.dtype, name: str) -> np.ndarray:
    """Ensure ``arr`` has exactly dtype ``dtype``; return it."""
    if arr.dtype != dtype:
        raise ValidationError(f"{name} must have dtype {dtype}, got {arr.dtype}")
    return arr


def check_positive(value: Any, name: str) -> int:
    """Ensure ``value`` is a positive integer; return it as ``int``."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}") from exc
    if ivalue <= 0 or ivalue != value:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Ensure ``lo <= value <= hi``; return ``value`` as ``float``."""
    fvalue = float(value)
    if not (lo <= fvalue <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return fvalue


def check_sorted_rows(col_idx: np.ndarray, valid: np.ndarray, name: str) -> None:
    """Ensure column indices increase strictly along each valid row prefix.

    ``col_idx`` is a 2-D ELLPACK-style index array and ``valid`` a boolean
    mask of the same shape marking real (non-padding) entries. The BRO delta
    encoding requires strictly increasing column indices within a row
    (Section 3.1: "the delta values will be positive").
    """
    col_idx = np.asarray(col_idx)
    valid = np.asarray(valid, dtype=bool)
    if col_idx.shape != valid.shape:
        raise ValidationError(
            f"{name}: index array shape {col_idx.shape} != mask shape {valid.shape}"
        )
    if col_idx.shape[1] < 2:
        return
    both = valid[:, 1:] & valid[:, :-1]
    if np.any(both & (col_idx[:, 1:] <= col_idx[:, :-1])):
        raise ValidationError(f"{name}: column indices must strictly increase within each row")
