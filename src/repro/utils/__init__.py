"""Small shared utilities: bit math, argument validation, statistics."""

from .bits import bit_width, bit_width_array, ceil_div, mask, round_up
from .validation import (
    check_1d,
    check_2d,
    check_dtype,
    check_in_range,
    check_positive,
    check_sorted_rows,
)

__all__ = [
    "bit_width",
    "bit_width_array",
    "ceil_div",
    "mask",
    "round_up",
    "check_1d",
    "check_2d",
    "check_dtype",
    "check_in_range",
    "check_positive",
    "check_sorted_rows",
]
