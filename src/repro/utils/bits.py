"""Bit-width arithmetic used by the BRO compression schemes.

The paper's :math:`\\Gamma(u)` function (Section 3.4, Eqn. 2) returns the
number of bits required to pack an unsigned integer ``u``. We adopt the
convention :math:`\\Gamma(0) = 1`: a zero still occupies one bit so that the
*invalid* marker (delta value 0, Algorithm 1 line 17) is representable in any
column that mixes valid and padded entries.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["bit_width", "bit_width_array", "ceil_div", "round_up", "mask"]


def bit_width(u: int) -> int:
    """Return :math:`\\Gamma(u)`, the bits needed to pack unsigned ``u``.

    ``bit_width(0) == 1`` by convention (see module docstring).

    >>> bit_width(0), bit_width(1), bit_width(7), bit_width(8)
    (1, 1, 3, 4)
    """
    u = int(u)
    if u < 0:
        raise ValidationError(f"bit_width requires a non-negative integer, got {u}")
    return max(1, u.bit_length())


def bit_width_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bit_width` over an array of non-negative integers.

    Returns an ``int64`` array of the same shape.
    """
    arr = np.asarray(values)
    if arr.size and arr.min() < 0:
        raise ValidationError("bit_width_array requires non-negative integers")
    # Gamma(u) = floor(log2(u)) + 1 for u >= 1; computed branch-free via a
    # comparison against powers of two so it stays exact for 64-bit inputs
    # (log2 on large ints loses precision).
    arr64 = arr.astype(np.uint64, copy=False)
    out = np.ones(arr.shape, dtype=np.int64)
    # For each bit position b >= 1, values >= 2**b need at least b+1 bits.
    if arr.size:
        top = int(arr64.max())
        b = 1
        threshold = np.uint64(2)
        while threshold <= top:
            out += (arr64 >= threshold).astype(np.int64)
            b += 1
            if b >= 64:
                break
            threshold = np.uint64(1) << np.uint64(b)
    return out


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValidationError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValidationError(f"ceil_div dividend must be non-negative, got {a}")
    return -(-a // b)


def round_up(a: int, multiple: int) -> int:
    """Round ``a`` up to the nearest multiple of ``multiple``."""
    return ceil_div(a, multiple) * multiple


def mask(nbits: int) -> int:
    """Return an integer with the low ``nbits`` bits set.

    >>> mask(0), mask(3), mask(32) == 0xFFFFFFFF
    (0, 7, True)
    """
    nbits = int(nbits)
    if nbits < 0:
        raise ValidationError(f"mask width must be non-negative, got {nbits}")
    return (1 << nbits) - 1
