"""repro — Bit-Representation-Optimized sparse formats and a GPU SpMV simulator.

A from-scratch reproduction of *"Accelerating Sparse Matrix-Vector
Multiplication on GPUs using Bit-Representation-Optimized Schemes"*
(Tang et al., SC '13): the BRO-ELL / BRO-COO / BRO-HYB compressed formats,
the classical baselines they are measured against, the BRO-aware matrix
reordering (BAR) with RCM/AMD baselines, and a simulated-GPU execution
substrate that reproduces the paper's evaluation without CUDA hardware.

Typical use::

    import numpy as np
    from repro import BROELLMatrix, run_spmv
    from repro.matrices import generate

    A = generate("shipsec1", scale=0.1)     # synthetic Table 2 stand-in
    bro = BROELLMatrix.from_coo(A, h=256)   # offline compression (Fig. 1)
    x = np.ones(A.shape[1])
    result = run_spmv(bro, x, device="k20") # Algorithm 1, simulated
    print(result.gflops, result.counters.dram_bytes)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from . import (
    bench,
    bitstream,
    core,
    exec,
    formats,
    gpu,
    integrity,
    kernels,
    matrices,
    registry,
    reorder,
    serve,
    solvers,
    telemetry,
    tuner,
)
from .core import (
    BROCOOMatrix,
    BROELLMatrix,
    BROHYBMatrix,
    CompressionReport,
    compression_ratio,
    index_compression_report,
    space_savings,
)
from .errors import AdmissionError, ReproError, ServeError
# Importing the partitioner registers the "sharded" container format, so
# sharded .brx files round-trip through plain load_container().
from .exec.chaos import ChaosPolicy, run_chaos_campaign
from .exec.partition import ShardedMatrix, partition
from .exec.policy import ExecutionPolicy
from .exec.scaling import strong_scaling, weak_scaling
from .formats import (
    COOMatrix,
    CSRMatrix,
    ELLPACKMatrix,
    ELLPACKRMatrix,
    HYBMatrix,
    SlicedELLPACKMatrix,
    SparseFormat,
    convert,
    from_dense,
    from_scipy,
    to_scipy,
)
from .gpu import DEVICES, DeviceSpec, get_device
from .integrity import run_campaign, seal, validate_structure, verify_integrity
from .kernels import SpMVResult, jit_available, prepare, run_spmm, run_spmv
from .pipeline import Session
from .tuner import OnlineTuner, RetuneConfig
from .registry import register_format
from .serialize import load_container, save_container
from .reorder import (
    amd_permutation,
    apply_reordering,
    bar_permutation,
    rcm_permutation,
    rowsort_permutation,
)
from .serve import (
    MatrixPool,
    ServeClient,
    ServerConfig,
    SpMVRequest,
    SpMVResponse,
    SpMVServer,
)
from .solvers import SimulatedOperator, conjugate_gradient, gmres

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # formats
    "SparseFormat",
    "COOMatrix",
    "CSRMatrix",
    "ELLPACKMatrix",
    "ELLPACKRMatrix",
    "SlicedELLPACKMatrix",
    "HYBMatrix",
    "convert",
    "from_dense",
    "from_scipy",
    "to_scipy",
    # the paper's contribution
    "BROELLMatrix",
    "BROCOOMatrix",
    "BROHYBMatrix",
    "CompressionReport",
    "index_compression_report",
    "space_savings",
    "compression_ratio",
    # simulated GPU
    "DeviceSpec",
    "DEVICES",
    "get_device",
    "run_spmv",
    "run_spmm",
    "prepare",
    "SpMVResult",
    "jit_available",
    # execution policy + multi-device sharding
    "ExecutionPolicy",
    "ShardedMatrix",
    "partition",
    "strong_scaling",
    "weak_scaling",
    # fault tolerance + chaos testing
    "ChaosPolicy",
    "run_chaos_campaign",
    # extension points
    "register_format",
    # reordering
    "bar_permutation",
    "rcm_permutation",
    "amd_permutation",
    "rowsort_permutation",
    "apply_reordering",
    # solvers
    "conjugate_gradient",
    "gmres",
    "SimulatedOperator",
    # integrity
    "seal",
    "verify_integrity",
    "validate_structure",
    "run_campaign",
    # pipeline + persistence
    "Session",
    "save_container",
    "load_container",
    # online autotuning
    "OnlineTuner",
    "RetuneConfig",
    # serving layer
    "SpMVRequest",
    "SpMVResponse",
    "ServerConfig",
    "SpMVServer",
    "ServeClient",
    "MatrixPool",
    "ServeError",
    "AdmissionError",
    # subpackages
    "registry",
    "bench",
    "bitstream",
    "core",
    "exec",
    "formats",
    "gpu",
    "integrity",
    "kernels",
    "matrices",
    "reorder",
    "serve",
    "solvers",
    "telemetry",
    "tuner",
]
