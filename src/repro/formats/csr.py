"""Compressed Sparse Row (CSR) format.

Included as a baseline substrate (Willcock & Lumsdaine and Kourtis et al.
compress CSR on the CPU; Baskaran & Bordawekar's GPU kernels use it) and as
the fastest host-side representation for the iterative solvers.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.validation import check_1d
from .base import SparseFormat, register_format
from .coo import COOMatrix

__all__ = ["CSRMatrix"]


@register_format(tuner=TunerProfile())
class CSRMatrix(SparseFormat):
    """Compressed sparse row matrix with ``int32`` indices."""

    format_name = "csr"

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        indptr = check_1d(indptr, "indptr").astype(np.int64, copy=False)
        indices = check_1d(indices, "indices").astype(np.int64, copy=False)
        vals = check_1d(vals, "vals").astype(VALUE_DTYPE, copy=True)
        m, n = int(shape[0]), int(shape[1])
        if m <= 0 or n <= 0:
            raise ValidationError(f"shape must be positive, got {shape}")
        if indptr.shape[0] != m + 1:
            raise ValidationError(f"indptr must have length m+1={m + 1}")
        if int(indptr[0]) != 0 or int(indptr[-1]) != indices.shape[0]:
            raise ValidationError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise ValidationError("indptr must be non-decreasing")
        if indices.shape != vals.shape:
            raise ValidationError("indices and vals must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValidationError("column index out of range")

        self._indptr = indptr
        self._indices = indices.astype(INDEX_DTYPE)
        self._vals = vals
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """Row pointer array (``int64``, length ``m + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Column index of every entry (``int32``)."""
        return self._indices

    @property
    def vals(self) -> np.ndarray:
        """Value of every entry (``float64``)."""
        return self._vals

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._indices.shape[0])

    def row_lengths(self) -> np.ndarray:
        """Entries per row (``int64``)."""
        return np.diff(self._indptr)

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        row = np.repeat(np.arange(self._shape[0], dtype=np.int64), self.row_lengths())
        return COOMatrix(row, self._indices, self._vals, self._shape)

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "CSRMatrix":
        m = coo.shape[0]
        lengths = coo.row_lengths()
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        # COOMatrix keeps entries sorted by (row, col), so indices/vals are
        # already in CSR order.
        return cls(indptr, coo.col_idx, coo.vals, coo.shape)

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {"shape": list(self._shape)}
        arrays = {"indptr": self._indptr, "indices": self._indices, "vals": self._vals}
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "CSRMatrix":
        return cls(
            arrays["indptr"], arrays["indices"], arrays["vals"],
            tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        products = self._vals * x[self._indices]
        # Segment sum via reduceat; guard empty rows and the empty matrix.
        if products.size == 0:
            return np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        starts = self._indptr[:-1]
        nonempty = np.flatnonzero(np.diff(self._indptr) > 0)
        if nonempty.size:
            sums = np.add.reduceat(products, starts[nonempty])
            y[nonempty] = sums
        return y

    def device_bytes(self) -> Dict[str, int]:
        # indptr is index metadata too; count it with 4-byte entries as CUSP
        # stores it (int32 row offsets).
        return {
            "index": int(self._indices.nbytes),
            "values": int(self._vals.nbytes),
            "aux": int(4 * self._indptr.shape[0]),
        }
