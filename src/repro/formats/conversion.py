"""Conversions between library formats, SciPy matrices and dense arrays."""

from __future__ import annotations

from typing import Any

import numpy as np

from .. import registry as _registry
from ..errors import FormatError
from ..telemetry.tracer import span as _span
from .base import SparseFormat
from .coo import COOMatrix

__all__ = ["convert", "from_scipy", "to_scipy", "from_dense"]


def convert(matrix: SparseFormat, target: str, **kwargs: Any) -> SparseFormat:
    """Convert ``matrix`` to the registered format named ``target``.

    Extra keyword arguments override the target's registry-declared
    conversion defaults and are forwarded to its ``from_coo`` (e.g.
    ``h=256`` for sliced formats, ``k=...`` for an explicit HYB split);
    unknown keywords raise :class:`~repro.errors.FormatError` naming the
    declared ones.

    The early return compares ``format_name`` — not ``isinstance`` — so a
    subclassed format (``ellpack_r`` is an ``ELLPACKMatrix``) still
    converts to its parent format rather than passing through unchanged.
    """
    spec = _registry.get_spec(target)
    if matrix.format_name == spec.name and not kwargs:
        return matrix
    merged = spec.conversion_kwargs(**kwargs)
    with _span(f"convert.{target}", "pipeline",
               source=matrix.format_name, target=target):
        return spec.container.from_coo(matrix.to_coo(), **merged)


def from_dense(dense: np.ndarray, target: str = "coo", **kwargs: Any) -> SparseFormat:
    """Build a sparse matrix in format ``target`` from a dense array."""
    coo = COOMatrix.from_dense(dense)
    return convert(coo, target, **kwargs)


def from_scipy(matrix: Any, target: str = "coo", **kwargs: Any) -> SparseFormat:
    """Build from any ``scipy.sparse`` matrix (optional dependency)."""
    if not hasattr(matrix, "tocoo"):
        raise FormatError(
            f"expected a scipy.sparse matrix with .tocoo(), got {type(matrix)!r}"
        )
    sp = matrix.tocoo()
    coo = COOMatrix(sp.row, sp.col, sp.data, sp.shape)
    return convert(coo, target, **kwargs)


def to_scipy(matrix: SparseFormat):
    """Convert to a ``scipy.sparse.coo_matrix`` (requires SciPy)."""
    try:
        from scipy import sparse
    except ImportError as exc:  # pragma: no cover - scipy is a test dep
        raise FormatError("SciPy is required for to_scipy()") from exc
    coo = matrix.to_coo()
    return sparse.coo_matrix(
        (coo.vals, (coo.row_idx, coo.col_idx)), shape=coo.shape
    )
