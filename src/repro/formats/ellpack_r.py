"""ELLPACK-R format (Vázquez et al., paper Section 2.1.4).

The arrays are identical to ELLPACK; the extra ``row_length`` array lets the
kernel stop each thread after its own row's entries, so the padded slots cost
neither loads nor flops — a warp only runs as long as its longest row. The
storage class therefore subclasses :class:`ELLPACKMatrix` and only changes
the byte accounting (the ``row_length`` array is a real device array here,
not just bookkeeping) and advertises the early-exit execution semantics that
:mod:`repro.kernels.spmv_ellpack_r` implements.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..registry import TunerProfile
from .base import register_format
from .coo import COOMatrix
from .ellpack import ELLPACKMatrix, ellpack_arrays_from_coo

__all__ = ["ELLPACKRMatrix"]


@register_format(tuner=TunerProfile(dense_family=True))
class ELLPACKRMatrix(ELLPACKMatrix):
    """ELLPACK plus an explicit per-row length array (ELLPACK-R)."""

    format_name = "ellpack_r"

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "ELLPACKRMatrix":
        col_idx, vals, lengths = ellpack_arrays_from_coo(coo)
        return cls(col_idx, vals, lengths, coo.shape)

    def warp_iterations(self, warp_size: int = 32) -> np.ndarray:
        """Iterations each warp executes: the max row length in the warp.

        This is the paper's observation that "the time required by each
        thread is only limited by the longest computing thread within the
        same warp".
        """
        m = self.shape[0]
        n_warps = -(-m // warp_size)
        padded = np.zeros(n_warps * warp_size, dtype=np.int64)
        padded[:m] = self._row_lengths
        return padded.reshape(n_warps, warp_size).max(axis=1)

    def device_bytes(self) -> Dict[str, int]:
        base = super().device_bytes()
        base["aux"] = 4 * self.shape[0]  # int32 row_length array
        return base
