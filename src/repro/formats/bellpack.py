"""Blocked ELLPACK (BELLPACK, Choi et al. [6] in the paper's related work).

Stores dense ``r x c`` blocks ELLPACK-style: one block-column index per
block instead of one column index per entry — an *implicit* index
compression by a factor ``r*c`` that the paper's Section 5 contrasts with
BRO's explicit bit compression. The price is fill-in: every stored block
is dense, so entries that fall inside a touched block but are zero get
stored (and multiplied) anyway.

The format is the natural baseline for the question "does BRO beat simply
blocking?" on FEM matrices whose entries already come in small dense
blocks (``cant``, ``shipsec1``...).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.bits import ceil_div
from ..utils.validation import check_positive
from .base import SparseFormat, register_format
from .coo import COOMatrix

__all__ = ["BELLPACKMatrix"]


@register_format(default_kwargs={"r": 3, "c": 3}, tuner=TunerProfile(dense_family=True))
class BELLPACKMatrix(SparseFormat):
    """Blocked-ELLPACK storage with ``r x c`` dense blocks."""

    format_name = "bellpack"

    def __init__(
        self,
        block_col_idx: np.ndarray,
        block_vals: np.ndarray,
        block_row_lengths: np.ndarray,
        block_shape: Tuple[int, int],
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        r, c = int(block_shape[0]), int(block_shape[1])
        check_positive(r, "r")
        check_positive(c, "c")
        mb = ceil_div(m, r)
        block_col_idx = np.asarray(block_col_idx, dtype=INDEX_DTYPE)
        block_vals = np.asarray(block_vals, dtype=VALUE_DTYPE)
        block_row_lengths = np.asarray(block_row_lengths, dtype=np.int64)
        if block_col_idx.ndim != 2 or block_col_idx.shape[0] != mb:
            raise ValidationError(
                f"block_col_idx must be ({mb}, K), got {block_col_idx.shape}"
            )
        K = block_col_idx.shape[1]
        if block_vals.shape != (mb, K, r, c):
            raise ValidationError(
                f"block_vals must be ({mb}, {K}, {r}, {c}), got {block_vals.shape}"
            )
        if block_row_lengths.shape != (mb,):
            raise ValidationError("block_row_lengths must have one entry per block row")
        if block_row_lengths.size and (
            block_row_lengths.min() < 0 or block_row_lengths.max() > K
        ):
            raise ValidationError(f"block row lengths must be in [0, {K}]")
        nb = ceil_div(n, c)
        if block_col_idx.size and (
            block_col_idx.min() < 0 or block_col_idx.max() >= nb
        ):
            raise ValidationError("block column index out of range")

        self._bcol = block_col_idx
        self._bvals = block_vals
        self._blens = block_row_lengths
        self._r, self._c = r, c
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def block_shape(self) -> Tuple[int, int]:
        """Dense block dimensions ``(r, c)``."""
        return (self._r, self._c)

    @property
    def block_col_idx(self) -> np.ndarray:
        """``(mb, K)`` block-column indices (padding stored as 0)."""
        return self._bcol

    @property
    def block_vals(self) -> np.ndarray:
        """``(mb, K, r, c)`` dense block values."""
        return self._bvals

    @property
    def block_row_lengths(self) -> np.ndarray:
        """Stored blocks per block-row."""
        return self._blens

    @property
    def K(self) -> int:
        """Padded block-row width."""
        return int(self._bcol.shape[1])

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        """Exact non-zeros (fill-in zeros are storage, not entries)."""
        mask = self._valid_block_mask()
        return int(np.count_nonzero(self._bvals[mask]))

    @property
    def stored_entries(self) -> int:
        """Entries physically stored, including block fill-in."""
        return int(self._blens.sum()) * self._r * self._c

    @property
    def fill_ratio(self) -> float:
        """Stored entries / real non-zeros (>= 1; the blocking overhead)."""
        nnz = self.nnz
        return self.stored_entries / nnz if nnz else 0.0

    def _valid_block_mask(self) -> np.ndarray:
        return np.arange(self.K)[np.newaxis, :] < self._blens[:, np.newaxis]

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, coo: COOMatrix, r: int = 3, c: int = 3, **kwargs
    ) -> "BELLPACKMatrix":
        r = check_positive(r, "r")
        c = check_positive(c, "c")
        m, n = coo.shape
        mb = ceil_div(m, r)
        brow = coo.row_idx.astype(np.int64) // r
        bcol = coo.col_idx.astype(np.int64) // c
        # Distinct blocks per block-row, in sorted order.
        keys = brow * ceil_div(n, c) + bcol
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        first = np.ones(keys_sorted.shape[0], dtype=bool)
        first[1:] = keys_sorted[1:] != keys_sorted[:-1]
        block_ids = np.cumsum(first) - 1  # dense block numbering, sorted
        n_blocks = int(block_ids[-1]) + 1 if keys.size else 0

        ub_row = (keys_sorted[first] // ceil_div(n, c)).astype(np.int64)
        ub_col = (keys_sorted[first] % ceil_div(n, c)).astype(np.int64)
        lengths = np.bincount(ub_row, minlength=mb).astype(np.int64)
        K = int(lengths.max()) if lengths.size else 0

        block_col_idx = np.zeros((mb, K), dtype=INDEX_DTYPE)
        block_vals = np.zeros((mb, K, r, c), dtype=VALUE_DTYPE)
        if n_blocks:
            starts = np.zeros(mb + 1, dtype=np.int64)
            np.cumsum(lengths, out=starts[1:])
            slot_of_block = np.arange(n_blocks) - starts[ub_row]
            block_col_idx[ub_row, slot_of_block] = ub_col
            # Scatter entries into their block slots.
            entry_block = block_ids  # per sorted entry
            entry_slot = slot_of_block[entry_block]
            entry_brow = ub_row[entry_block]
            lr = coo.row_idx[order].astype(np.int64) % r
            lc = coo.col_idx[order].astype(np.int64) % c
            block_vals[entry_brow, entry_slot, lr, lc] = coo.vals[order]
        return cls(block_col_idx, block_vals, lengths, (r, c), coo.shape)

    def to_coo(self) -> COOMatrix:
        mask = self._valid_block_mask()
        br, slot = np.nonzero(mask)
        # Expand each block to entry coordinates; drop stored zeros.
        r, c = self._r, self._c
        vals = self._bvals[br, slot]  # (nb, r, c)
        nb = br.shape[0]
        rows = (br[:, None, None] * r + np.arange(r)[None, :, None])
        cols = (
            self._bcol[br, slot].astype(np.int64)[:, None, None] * c
            + np.arange(c)[None, None, :]
        )
        rows = np.broadcast_to(rows, (nb, r, c)).reshape(-1)
        cols = np.broadcast_to(cols, (nb, r, c)).reshape(-1)
        flat = vals.reshape(-1)
        keep = (flat != 0) & (rows < self._shape[0]) & (cols < self._shape[1])
        return COOMatrix(rows[keep], cols[keep], flat[keep], self._shape)

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "r": self._r, "c": self._c,
        }
        arrays = {
            "block_col_idx": self._bcol,
            "block_vals": self._bvals,
            "block_row_lengths": self._blens,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "BELLPACKMatrix":
        return cls(
            arrays["block_col_idx"], arrays["block_vals"],
            arrays["block_row_lengths"],
            (int(meta["r"]), int(meta["c"])), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        m, n = self._shape
        r, c = self._r, self._c
        mb, K = self._bcol.shape
        # Pad x to whole blocks, then accumulate block-column by
        # block-column, entry-column by entry-column — the register
        # accumulation order of the device kernel (each thread walks its
        # block row left to right), so plans replay it bit-for-bit.
        x_pad = np.zeros(ceil_div(n, c) * c, dtype=VALUE_DTYPE)
        x_pad[:n] = x
        cols0 = self._bcol.astype(np.int64) * c  # (mb, K) first x index
        acc = np.zeros((mb, r), dtype=VALUE_DTYPE)
        for k in range(K):
            for cc in range(c):
                # (mb, r) block column times the gathered x element.
                acc += self._bvals[:, k, :, cc] * x_pad[cols0[:, k] + cc][:, None]
        return acc.reshape(-1)[:m]

    def device_bytes(self) -> Dict[str, int]:
        return {
            "index": int(self._bcol.nbytes),
            "values": int(self._bvals.nbytes),
            "aux": 4 * int(self._blens.shape[0]),
        }
