"""Coordinate (COO) format — the canonical interchange representation.

Entries are kept sorted by ``(row, col)`` with duplicates summed, so every
other format can convert through COO deterministically. Index arrays are
``int32`` (as in CUSP) and values ``float64``.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..errors import FormatError, ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.validation import check_1d
from .base import SparseFormat, register_format

__all__ = ["COOMatrix"]


@register_format(tuner=TunerProfile())
class COOMatrix(SparseFormat):
    """Sorted, deduplicated coordinate-format sparse matrix.

    Parameters
    ----------
    row_idx, col_idx:
        Entry coordinates (0-based). Any integer dtype; stored as ``int32``.
    vals:
        Entry values; stored as ``float64``.
    shape:
        Logical matrix shape ``(m, n)``.
    sum_duplicates:
        When ``True`` (default) repeated coordinates are summed, as SciPy
        does; when ``False`` duplicates raise :class:`FormatError`.
    """

    format_name = "coo"

    def __init__(
        self,
        row_idx: np.ndarray,
        col_idx: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
        *,
        sum_duplicates: bool = True,
    ) -> None:
        row_idx = check_1d(row_idx, "row_idx").astype(np.int64, copy=False)
        col_idx = check_1d(col_idx, "col_idx").astype(np.int64, copy=False)
        vals = check_1d(vals, "vals").astype(VALUE_DTYPE, copy=True)
        if not (row_idx.shape == col_idx.shape == vals.shape):
            raise ValidationError(
                f"row_idx/col_idx/vals must have equal length, got "
                f"{row_idx.shape}, {col_idx.shape}, {vals.shape}"
            )
        m, n = int(shape[0]), int(shape[1])
        if m <= 0 or n <= 0:
            raise ValidationError(f"shape must be positive, got {shape}")
        if row_idx.size:
            if row_idx.min() < 0 or row_idx.max() >= m:
                raise ValidationError("row index out of range")
            if col_idx.min() < 0 or col_idx.max() >= n:
                raise ValidationError("column index out of range")

        order = np.lexsort((col_idx, row_idx))
        row_idx, col_idx, vals = row_idx[order], col_idx[order], vals[order]
        if row_idx.size > 1:
            dup = (row_idx[1:] == row_idx[:-1]) & (col_idx[1:] == col_idx[:-1])
            if np.any(dup):
                if not sum_duplicates:
                    raise FormatError("duplicate coordinates present")
                # Segment-sum values over runs of identical coordinates.
                first = np.concatenate(([True], ~dup))
                seg = np.cumsum(first) - 1
                summed = np.zeros(int(seg[-1]) + 1, dtype=VALUE_DTYPE)
                np.add.at(summed, seg, vals)
                keep = np.flatnonzero(first)
                row_idx, col_idx, vals = row_idx[keep], col_idx[keep], summed

        self._row = row_idx.astype(INDEX_DTYPE)
        self._col = col_idx.astype(INDEX_DTYPE)
        self._vals = vals
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def row_idx(self) -> np.ndarray:
        """Row coordinate of every entry (``int32``, sorted)."""
        return self._row

    @property
    def col_idx(self) -> np.ndarray:
        """Column coordinate of every entry (``int32``)."""
        return self._col

    @property
    def vals(self) -> np.ndarray:
        """Value of every entry (``float64``)."""
        return self._vals

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._vals.shape[0])

    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Number of stored entries in each row (``int64``, length ``m``)."""
        return np.bincount(self._row, minlength=self._shape[0]).astype(np.int64)

    def to_coo(self) -> "COOMatrix":
        return self

    @classmethod
    def from_coo(cls, coo: "COOMatrix", **kwargs) -> "COOMatrix":
        return coo

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {"shape": list(self._shape)}
        arrays = {"row_idx": self._row, "col_idx": self._col, "vals": self._vals}
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "COOMatrix":
        return cls(
            arrays["row_idx"], arrays["col_idx"], arrays["vals"],
            tuple(meta["shape"]),
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, storing exact non-zeros only."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2:
            raise ValidationError(f"dense must be 2-D, got shape {dense.shape}")
        row, col = np.nonzero(dense)
        return cls(row, col, dense[row, col], dense.shape)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self._shape, dtype=VALUE_DTYPE)
        out[self._row, self._col] = self._vals
        return out

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        np.add.at(y, self._row, self._vals * x[self._col])
        return y

    def device_bytes(self) -> Dict[str, int]:
        return {
            "index": int(self._row.nbytes + self._col.nbytes),
            "values": int(self._vals.nbytes),
        }

    # ------------------------------------------------------------------
    def permute_rows(self, perm: np.ndarray) -> "COOMatrix":
        """Return ``P @ A`` where row ``perm[i]`` of ``A`` becomes row ``i``.

        ``perm`` is the *gather* permutation: ``new_A[i, :] = A[perm[i], :]``.
        """
        perm = check_1d(perm, "perm").astype(np.int64)
        m = self._shape[0]
        if perm.shape[0] != m or not np.array_equal(np.sort(perm), np.arange(m)):
            raise ValidationError("perm must be a permutation of range(m)")
        inv = np.empty(m, dtype=np.int64)
        inv[perm] = np.arange(m)
        return COOMatrix(inv[self._row], self._col, self._vals, self._shape)
