"""Hybrid ELLPACK + COO format (Bell & Garland, paper Section 2.1.3).

The split heuristic follows the paper's description of [5]: the dividing
column ``k`` is the largest width such that at least a third of the rows
still have ``k`` or more non-zeros — i.e. every ELLPACK column is at least
one-third utilized. The first ``k`` entries of each row go to the ELLPACK
part; the overflow goes to the COO part.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import VALUE_DTYPE
from .base import SparseFormat, register_format
from .coo import COOMatrix
from .csr import CSRMatrix
from .ellpack import ELLPACKMatrix, ellpack_arrays_from_coo

__all__ = ["HYBMatrix", "hyb_split_column"]

#: Minimum fraction of rows that must reach a column for it to stay in the
#: ELLPACK part (the "one third" of the Bell–Garland heuristic).
ELL_UTILIZATION = 1.0 / 3.0


def hyb_split_column(row_lengths: np.ndarray, fraction: float = ELL_UTILIZATION) -> int:
    """Return the ELLPACK width ``k`` of the Bell–Garland HYB split.

    ``k`` is the largest value such that the number of rows with at least
    ``k`` non-zeros is ``>= fraction * m``; 0 means a pure-COO matrix.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if lengths.ndim != 1 or lengths.size == 0:
        raise ValidationError("row_lengths must be a non-empty 1-D array")
    m = lengths.shape[0]
    max_len = int(lengths.max())
    if max_len == 0:
        return 0
    # rows_with_at_least[j] = #rows with length >= j, for j in 0..max_len.
    counts = np.bincount(lengths, minlength=max_len + 1)
    rows_with_at_least = m - np.cumsum(counts) + counts
    threshold = fraction * m
    qualifying = np.flatnonzero(rows_with_at_least[1:] >= threshold) + 1
    return int(qualifying.max()) if qualifying.size else 0


def split_coo(coo: COOMatrix, k: int) -> Tuple[COOMatrix | None, COOMatrix | None]:
    """Split a COO matrix at column position ``k`` of each row.

    Returns ``(ell_part, coo_part)`` as COO matrices; either may be ``None``
    when empty. The first ``k`` entries of every row land in ``ell_part``.
    """
    if k < 0:
        raise ValidationError(f"split column k must be non-negative, got {k}")
    lengths = coo.row_lengths()
    csr = CSRMatrix.from_coo(coo)
    pos = np.arange(coo.nnz, dtype=np.int64) - np.repeat(csr.indptr[:-1], lengths)
    in_ell = pos < k
    row = coo.row_idx
    parts = []
    for mask in (in_ell, ~in_ell):
        if np.any(mask):
            parts.append(
                COOMatrix(row[mask], coo.col_idx[mask], coo.vals[mask], coo.shape)
            )
        else:
            parts.append(None)
    return parts[0], parts[1]


@register_format(default_kwargs={"k": None}, tuner=TunerProfile())
class HYBMatrix(SparseFormat):
    """Hybrid format: an ELLPACK part plus a COO overflow part."""

    format_name = "hyb"

    def __init__(self, ell: ELLPACKMatrix, coo: COOMatrix, shape: Tuple[int, int]) -> None:
        m, n = int(shape[0]), int(shape[1])
        if ell.shape != (m, n) or coo.shape != (m, n):
            raise ValidationError("HYB parts must share the logical shape")
        self._ell = ell
        self._coo = coo
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def ell(self) -> ELLPACKMatrix:
        """The ELLPACK part (first ``k`` entries of each row)."""
        return self._ell

    @property
    def coo(self) -> COOMatrix:
        """The COO overflow part."""
        return self._coo

    @property
    def k(self) -> int:
        """Width of the ELLPACK part."""
        return self._ell.k

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._ell.nnz + self._coo.nnz

    @property
    def ell_fraction(self) -> float:
        """Fraction of non-zeros stored in the ELLPACK part (Table 4)."""
        total = self.nnz
        return float(self._ell.nnz) / total if total else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, k: int | None = None, **kwargs) -> "HYBMatrix":
        """Build with the Bell–Garland split (or an explicit width ``k``)."""
        if k is None:
            k = hyb_split_column(coo.row_lengths())
        ell_coo, tail_coo = split_coo(coo, k)
        m, n = coo.shape
        if ell_coo is None:
            ell = ELLPACKMatrix(
                np.zeros((m, 0), np.int32),
                np.zeros((m, 0), np.float64),
                np.zeros(m, np.int64),
                coo.shape,
            )
        else:
            col_idx, vals, lengths = ellpack_arrays_from_coo(ell_coo, k=k)
            ell = ELLPACKMatrix(col_idx, vals, lengths, coo.shape)
        if tail_coo is None:
            tail_coo = COOMatrix(
                np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), coo.shape
            )
        return cls(ell, tail_coo, coo.shape)

    def to_coo(self) -> COOMatrix:
        ell_coo = self._ell.to_coo()
        return COOMatrix(
            np.concatenate([ell_coo.row_idx, self._coo.row_idx]),
            np.concatenate([ell_coo.col_idx, self._coo.col_idx]),
            np.concatenate([ell_coo.vals, self._coo.vals]),
            self._shape,
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        ell_meta, ell_arrays = self._ell.to_state()
        coo_meta, coo_arrays = self._coo.to_state()
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "ell": ell_meta, "coo": coo_meta,
        }
        arrays = {f"ell.{k}": v for k, v in ell_arrays.items()}
        arrays.update({f"coo.{k}": v for k, v in coo_arrays.items()})
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "HYBMatrix":
        ell = ELLPACKMatrix.from_state(
            meta["ell"],
            {k[4:]: v for k, v in arrays.items() if k.startswith("ell.")},
        )
        coo = COOMatrix.from_state(
            meta["coo"],
            {k[4:]: v for k, v in arrays.items() if k.startswith("coo.")},
        )
        return cls(ell, coo, tuple(meta["shape"]))

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = self._ell.spmv(x) if self._ell.k else np.zeros(self._shape[0], VALUE_DTYPE)
        if self._coo.nnz:
            y = y + self._coo.spmv(x)
        return y

    def device_bytes(self) -> Dict[str, int]:
        ell_bytes = self._ell.device_bytes()
        coo_bytes = self._coo.device_bytes()
        return {
            "index": int(ell_bytes["index"] + coo_bytes["index"]),
            "values": int(ell_bytes["values"] + coo_bytes["values"]),
        }
