"""SELL-C-σ format (Kreutzer et al.) — sorted Sliced-ELLPACK chunks.

Sliced ELLPACK already bounds padding by the per-slice maximum row length;
SELL-C-σ attacks the remaining waste by *sorting*. Rows are reordered by
decreasing length inside windows of ``sigma`` consecutive rows, then
partitioned into chunks of ``c`` rows (the SIMD/warp width). Rows of
similar length land in the same chunk, so each chunk's width — the
maximum row length inside it — hugs the actual lengths and padding
collapses. ``sigma`` bounds how far a row may travel from its original
position: ``sigma = c`` barely perturbs the matrix, ``sigma = m`` is full
global sorting (maximal padding reduction, worst ``x``-access locality).

Storage is the Sliced-ELLPACK flat block layout in *permuted* row space
plus the ``row_ids`` gather table mapping permuted positions back to
original rows (the kernel scatters ``y`` through it). The chunk edges
reuse :func:`~repro.formats.sliced_ellpack.slice_bounds`; explicitly
variable-height chunkings go through
:func:`~repro.formats.sliced_ellpack.variable_slice_bounds` exactly like
the parent format.

:mod:`repro.core.bro_sell` composes :class:`repro.bitstream.codec.BROCodec`
on top of this skeleton, the same way BRO-ELL composes it on Sliced
ELLPACK.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.validation import check_positive
from .base import SparseFormat, register_format
from .coo import COOMatrix
from .csr import CSRMatrix
from .sliced_ellpack import slice_bounds

__all__ = ["SELLCSigmaMatrix", "sell_permutation"]


def sell_permutation(row_lengths: np.ndarray, sigma: int) -> np.ndarray:
    """Row gather permutation of the σ-window sort.

    Within each window of ``sigma`` consecutive rows, rows are stably
    ordered by decreasing length; across windows the order is untouched.
    Returns ``perm`` with ``perm[p]`` = the original row stored at
    permuted position ``p``.
    """
    sigma = check_positive(sigma, "sigma")
    lengths = np.asarray(row_lengths, dtype=np.int64).reshape(-1)
    m = lengths.shape[0]
    perm = np.arange(m, dtype=np.int64)
    for w0 in range(0, m, sigma):
        w1 = min(w0 + sigma, m)
        order = np.argsort(-lengths[w0:w1], kind="stable")
        perm[w0:w1] = w0 + order
    return perm


@register_format(default_kwargs={"c": 32, "sigma": 128}, tuner=TunerProfile())
class SELLCSigmaMatrix(SparseFormat):
    """Sorted sliced ELLPACK with chunk height ``c`` and sort scope ``sigma``.

    Chunk ``i`` stores a dense ``(h_i, l_i)`` block of column indices and
    values for permuted rows ``[edges[i], edges[i+1])``, flattened
    row-major into the shared buffers; ``row_ids[p]`` is the original row
    held at permuted position ``p``.
    """

    format_name = "sell_c_sigma"

    def __init__(
        self,
        col_idx: np.ndarray,
        vals: np.ndarray,
        row_ids: np.ndarray,
        row_lengths: np.ndarray,
        num_col: np.ndarray,
        c: int,
        sigma: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        c = check_positive(c, "c")
        sigma = check_positive(sigma, "sigma")
        # Uniform chunking; a nominal c above m means one chunk.
        self._edges = slice_bounds(m, min(c, m))
        s = self._edges.shape[0] - 1
        row_ids = np.asarray(row_ids, dtype=np.int64)
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        num_col = np.asarray(num_col, dtype=np.int64)
        if row_ids.shape != (m,) or not np.array_equal(
            np.sort(row_ids), np.arange(m)
        ):
            raise ValidationError("row_ids must be a permutation of range(m)")
        if row_lengths.shape != (m,):
            raise ValidationError("row_lengths must have one entry per row")
        if num_col.shape != (s,):
            raise ValidationError(f"num_col must have {s} entries, got {num_col.shape}")
        perm_lengths = row_lengths[row_ids]
        for i in range(s):
            lo, hi = int(self._edges[i]), int(self._edges[i + 1])
            chunk_max = int(perm_lengths[lo:hi].max(initial=0))
            if int(num_col[i]) != chunk_max:
                raise ValidationError(
                    f"chunk {i} width {int(num_col[i])} != max row length {chunk_max}"
                )
        heights = np.diff(self._edges)
        block_sizes = heights * num_col
        expected = int(block_sizes.sum())
        col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if col_idx.shape != (expected,) or vals.shape != (expected,):
            raise ValidationError(
                f"flat buffers must have {expected} entries, got "
                f"{col_idx.shape} and {vals.shape}"
            )
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValidationError("column index out of range")

        self._block_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(block_sizes, out=self._block_ptr[1:])
        self._col_idx = col_idx
        self._vals = vals
        self._row_ids = row_ids
        self._row_lengths = row_lengths
        self._num_col = num_col
        self._c = c
        self._sigma = sigma
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def c(self) -> int:
        """Chunk height (the SIMD/warp width the format targets)."""
        return self._c

    @property
    def sigma(self) -> int:
        """Sort scope: rows are length-sorted within σ-row windows."""
        return self._sigma

    @property
    def num_chunks(self) -> int:
        return self._edges.shape[0] - 1

    @property
    def chunk_edges(self) -> np.ndarray:
        """Permuted-row boundaries of each chunk."""
        return self._edges

    @property
    def num_col(self) -> np.ndarray:
        """Per-chunk width — each chunk's maximum row length."""
        return self._num_col

    @property
    def row_ids(self) -> np.ndarray:
        """Original row stored at each permuted position (gather table)."""
        return self._row_ids

    @property
    def row_lengths(self) -> np.ndarray:
        """Real entries per row, in *original* row order."""
        return self._row_lengths

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    @property
    def padded_entries(self) -> int:
        """Padding slots across all chunks (what the sort minimizes)."""
        heights = np.diff(self._edges)
        return int((heights * self._num_col).sum()) - self.nnz

    def chunk_block(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Chunk ``i``'s ``(h_i, l_i)`` index and value blocks (views)."""
        if not 0 <= i < self.num_chunks:
            raise ValidationError(f"chunk index {i} out of range")
        lo, hi = int(self._block_ptr[i]), int(self._block_ptr[i + 1])
        h_i = int(self._edges[i + 1] - self._edges[i])
        l_i = int(self._num_col[i])
        return (
            self._col_idx[lo:hi].reshape(h_i, l_i),
            self._vals[lo:hi].reshape(h_i, l_i),
        )

    def iter_chunks(self) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(perm_start, perm_end, col_block, val_block)`` per chunk."""
        for i in range(self.num_chunks):
            cols, vals = self.chunk_block(i)
            yield int(self._edges[i]), int(self._edges[i + 1]), cols, vals

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, coo: COOMatrix, c: int = 32, sigma: int = 128, **kwargs
    ) -> "SELLCSigmaMatrix":
        m, _ = coo.shape
        c = check_positive(c, "c")
        sigma = check_positive(sigma, "sigma")
        lengths = coo.row_lengths()
        row_ids = sell_permutation(lengths, sigma)
        perm_lengths = lengths[row_ids]
        edges = slice_bounds(m, min(c, m))
        s = edges.shape[0] - 1
        num_col = np.array(
            [
                int(perm_lengths[edges[i] : edges[i + 1]].max(initial=0))
                for i in range(s)
            ],
            dtype=np.int64,
        )
        heights = np.diff(edges)
        total = int((heights * num_col).sum())
        col_idx = np.zeros(total, dtype=INDEX_DTYPE)
        vals = np.zeros(total, dtype=VALUE_DTYPE)
        block_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(heights * num_col, out=block_ptr[1:])
        if coo.nnz:
            csr = CSRMatrix.from_coo(coo)
            # Scatter every entry into its chunk block: entry positions of
            # permuted row p come from the original row's CSR run.
            perm_pos = np.searchsorted(edges, np.arange(m), side="right") - 1
            for p in range(m):
                row = int(row_ids[p])
                length = int(lengths[row])
                if not length:
                    continue
                i = int(perm_pos[p])
                local = p - int(edges[i])
                base = int(block_ptr[i]) + local * int(num_col[i])
                lo = int(csr.indptr[row])
                col_idx[base : base + length] = csr.indices[lo : lo + length]
                vals[base : base + length] = csr.vals[lo : lo + length]
        return cls(col_idx, vals, row_ids, lengths, num_col, c, sigma, coo.shape)

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = [], [], []
        perm_lengths = self._row_lengths[self._row_ids]
        for r0, r1, col_block, val_block in self.iter_chunks():
            l_i = col_block.shape[1]
            lens = perm_lengths[r0:r1]
            mask = np.arange(l_i)[np.newaxis, :] < lens[:, np.newaxis]
            r, p = np.nonzero(mask)
            rows.append(self._row_ids[r0:r1][r])
            cols.append(col_block[r, p])
            vals.append(val_block[r, p])
        if rows:
            return COOMatrix(
                np.concatenate(rows),
                np.concatenate(cols),
                np.concatenate(vals),
                self._shape,
            )
        return COOMatrix(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), self._shape
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "shape": list(self._shape), "c": self._c, "sigma": self._sigma,
        }
        arrays = {
            "col_idx": self._col_idx,
            "vals": self._vals,
            "row_ids": self._row_ids,
            "row_lengths": self._row_lengths,
            "num_col": self._num_col,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "SELLCSigmaMatrix":
        return cls(
            arrays["col_idx"], arrays["vals"], arrays["row_ids"],
            arrays["row_lengths"], arrays["num_col"],
            int(meta["c"]), int(meta["sigma"]), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        for r0, r1, col_block, val_block in self.iter_chunks():
            if col_block.shape[1]:
                # Unmasked column-sequential accumulation (padding stores
                # value 0.0 on column 0, like ELLPACK), scattered through
                # the permutation — the device loop order the prepared
                # plan replays bit-for-bit.
                prod = val_block * x[col_block]
                acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
                for j in range(prod.shape[1]):
                    acc += prod[:, j]
                y[self._row_ids[r0:r1]] = acc
        return y

    def device_bytes(self) -> Dict[str, int]:
        return {
            # The permutation table is part of the index structure the
            # kernel must stream (int32 per row on device).
            "index": int(self._col_idx.nbytes) + 4 * self._shape[0],
            "values": int(self._vals.nbytes),
            # num_col + chunk block pointers, int32 on device.
            "aux": int(4 * (self._num_col.shape[0] + self._block_ptr.shape[0])),
        }
