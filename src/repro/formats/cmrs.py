"""CMRS format (Koza et al.) — compressed multi-row strips.

CMRS groups ``height`` consecutive rows into a *strip* and stores the
strip's entries contiguously in row-major order, CSR-style, with one
pointer per strip instead of one per row. The row of each entry is
reconstructed from its strip id plus a *row-in-strip* offset stored as a
single ``uint8`` — 1 byte of row information per entry instead of the
4-byte absolute row index COO streams. That byte-level shrinking of the
index representation is the same lever the BRO schemes pull with
bit-packed delta streams, which is why the paper's Section 6 compares
against it: CMRS trades decode arithmetic (one multiply-add per entry)
for index traffic exactly like BRO-COO does, just at byte rather than
bit granularity.

One warp processes one strip: lanes walk the strip's entries, multiply,
and reduce partial sums per reconstructed row, so short rows no longer
idle a full warp the way scalar CSR does.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.bits import ceil_div
from ..utils.validation import check_positive
from .base import SparseFormat, register_format
from .coo import COOMatrix

__all__ = ["CMRSMatrix"]

#: ``row_in_strip`` is stored as uint8, bounding the strip height.
MAX_STRIP_HEIGHT = 256


@register_format(default_kwargs={"height": 4}, tuner=TunerProfile())
class CMRSMatrix(SparseFormat):
    """Compressed multi-row strips with per-entry ``uint8`` row offsets."""

    format_name = "cmrs"

    def __init__(
        self,
        strip_ptr: np.ndarray,
        col_idx: np.ndarray,
        row_in_strip: np.ndarray,
        vals: np.ndarray,
        height: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        height = check_positive(height, "height")
        if height > MAX_STRIP_HEIGHT:
            raise ValidationError(
                f"height must be <= {MAX_STRIP_HEIGHT} (row_in_strip is uint8), "
                f"got {height}"
            )
        n_strips = ceil_div(m, height) if m else 0
        strip_ptr = np.asarray(strip_ptr, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        row_in_strip = np.asarray(row_in_strip, dtype=np.uint8)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if strip_ptr.shape != (n_strips + 1,):
            raise ValidationError(
                f"strip_ptr must have {n_strips + 1} entries, got {strip_ptr.shape}"
            )
        if int(strip_ptr[0]) != 0 or np.any(np.diff(strip_ptr) < 0):
            raise ValidationError("strip_ptr must start at 0 and be non-decreasing")
        nnz = int(strip_ptr[-1]) if n_strips else 0
        if not (col_idx.shape == row_in_strip.shape == vals.shape == (nnz,)):
            raise ValidationError(
                f"entry arrays must all have {nnz} entries, got "
                f"{col_idx.shape}, {row_in_strip.shape}, {vals.shape}"
            )
        if col_idx.size and (int(col_idx.min()) < 0 or int(col_idx.max()) >= n):
            raise ValidationError("column index out of range")
        rows = self._reconstruct_rows(strip_ptr, row_in_strip, height)
        if rows.size and int(rows.max()) >= m:
            raise ValidationError("row_in_strip entries point past the last row")

        self._strip_ptr = strip_ptr
        self._col_idx = col_idx
        self._row_in_strip = row_in_strip
        self._vals = vals
        self._height = height
        self._shape = (m, n)
        self._rows = rows

    @staticmethod
    def _reconstruct_rows(
        strip_ptr: np.ndarray, row_in_strip: np.ndarray, height: int
    ) -> np.ndarray:
        """Per-entry absolute rows: ``strip * height + row_in_strip``."""
        n_strips = strip_ptr.shape[0] - 1
        strips = np.repeat(
            np.arange(n_strips, dtype=np.int64), np.diff(strip_ptr)
        )
        return strips * height + row_in_strip.astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Rows per strip (bounded by 256 — the uint8 offset range)."""
        return self._height

    @property
    def num_strips(self) -> int:
        return self._strip_ptr.shape[0] - 1

    @property
    def strip_ptr(self) -> np.ndarray:
        return self._strip_ptr

    @property
    def col_idx(self) -> np.ndarray:
        return self._col_idx

    @property
    def row_in_strip(self) -> np.ndarray:
        """Per-entry row offset inside its strip (``uint8``)."""
        return self._row_in_strip

    @property
    def vals(self) -> np.ndarray:
        return self._vals

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._col_idx.shape[0])

    def entry_rows(self) -> np.ndarray:
        """Absolute row of every entry (what the kernel's madd computes)."""
        return self._rows

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, height: int = 4, **kwargs) -> "CMRSMatrix":
        m, _ = coo.shape
        height = check_positive(height, "height")
        n_strips = ceil_div(m, height) if m else 0
        strips = coo.row_idx // height
        counts = np.bincount(strips, minlength=max(n_strips, 1))[:max(n_strips, 1)]
        strip_ptr = np.zeros(n_strips + 1, dtype=np.int64)
        if n_strips:
            np.cumsum(counts[:n_strips], out=strip_ptr[1:])
        # COOMatrix is (row, col)-sorted, hence already strip-major with
        # row-major order inside each strip — no re-sort needed.
        row_in_strip = (coo.row_idx % height).astype(np.uint8)
        return cls(
            strip_ptr, coo.col_idx, row_in_strip, coo.vals, height, coo.shape
        )

    def to_coo(self) -> COOMatrix:
        return COOMatrix(self._rows, self._col_idx, self._vals, self._shape)

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {"shape": list(self._shape), "height": self._height}
        arrays = {
            "strip_ptr": self._strip_ptr,
            "col_idx": self._col_idx,
            "row_in_strip": self._row_in_strip,
            "vals": self._vals,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "CMRSMatrix":
        return cls(
            arrays["strip_ptr"], arrays["col_idx"], arrays["row_in_strip"],
            arrays["vals"], int(meta["height"]), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        # Entry-ordered scatter accumulation — the same reduction order
        # the segmented device kernel commits, so plans replay it
        # bit-for-bit.
        np.add.at(y, self._rows, self._vals * x[self._col_idx])
        return y

    def device_bytes(self) -> Dict[str, int]:
        return {
            # 4 B column index + 1 B row offset per entry — the whole
            # point of the format versus COO's 4 + 4.
            "index": int(self._col_idx.nbytes) + int(self._row_in_strip.nbytes),
            "values": int(self._vals.nbytes),
            "aux": int(4 * self._strip_ptr.shape[0]),
        }
