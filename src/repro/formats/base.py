"""Abstract base class for sparse storage formats.

Registration lives in :mod:`repro.registry`; the names re-exported here
(:func:`register_format`, :func:`get_format`, :func:`available_formats`)
are thin delegates kept for compatibility with existing call sites.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Tuple, Type

import numpy as np

from .. import registry as _registry
from ..errors import FormatError, ValidationError
from ..registry import register_format
from ..types import VALUE_DTYPE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .coo import COOMatrix

__all__ = ["SparseFormat", "register_format", "get_format", "available_formats"]


def get_format(name: str) -> Type["SparseFormat"]:
    """Look up a registered format class by name (e.g. ``"ellpack"``)."""
    return _registry.get_spec(name).container


def available_formats() -> Tuple[str, ...]:
    """Names of all registered formats, sorted."""
    return _registry.available_formats()


class SparseFormat(ABC):
    """Common interface of every sparse storage scheme in the library.

    Subclasses are immutable containers of device arrays. They expose:

    * ``shape`` / ``nnz`` — logical matrix metadata;
    * ``to_coo()`` / ``from_coo()`` — conversion through the canonical
      coordinate representation;
    * ``spmv(x)`` — reference host SpMV (vectorized NumPy, no simulation);
    * ``device_bytes()`` — per-component byte accounting, the input to the
      compression statistics (Tables 3–5) and the GPU timing model;
    * ``to_state()`` / ``from_state()`` — optional lossless state
      decomposition backing the ``.brx`` container files
      (:mod:`repro.serialize`). Formats that skip it simply are not
      serializable; everything else keeps working.
    """

    #: registry key; subclasses must override.
    format_name: str = ""

    @property
    @abstractmethod
    def shape(self) -> Tuple[int, int]:
        """Logical ``(rows, cols)`` of the matrix."""

    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of stored non-zero entries (excluding padding)."""

    @abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert to the canonical coordinate representation."""

    @classmethod
    @abstractmethod
    def from_coo(cls, coo: "COOMatrix", **kwargs) -> "SparseFormat":
        """Build this format from a :class:`COOMatrix`."""

    @abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference host computation of ``y = A @ x``."""

    @abstractmethod
    def device_bytes(self) -> Dict[str, int]:
        """Bytes each component occupies on the (simulated) device.

        Returns a dict with at least the keys ``"index"`` and ``"values"``;
        formats with auxiliary arrays (row lengths, slice pointers, bit
        allocations, ...) add an ``"aux"`` key.
        """

    # ------------------------------------------------------------------
    # Serialization protocol (optional per format)
    # ------------------------------------------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Decompose into ``(meta, arrays)`` for container serialization.

        ``meta`` must be JSON-serializable; ``arrays`` maps names to the
        container's ndarrays. ``from_state(meta, arrays)`` must rebuild a
        bit-identical container.
        """
        raise FormatError(
            f"format {self.format_name!r} does not support serialization"
        )

    to_state.__serializer_stub__ = True  # type: ignore[attr-defined]

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "SparseFormat":
        """Rebuild a container from :meth:`to_state` output."""
        raise FormatError(
            f"format {cls.format_name!r} does not support serialization"
        )

    # ------------------------------------------------------------------
    # Shared conveniences
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Total device bytes across all components."""
        return int(sum(self.device_bytes().values()))

    @property
    def index_bytes(self) -> int:
        """Device bytes of index data (the target of BRO compression)."""
        return int(self.device_bytes()["index"])

    def to_dense(self) -> np.ndarray:
        """Materialize the matrix densely (testing/debugging only)."""
        return self.to_coo().to_dense()

    def check_x(self, x: np.ndarray) -> np.ndarray:
        """Validate the input vector of an SpMV and return it as float64."""
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.ndim != 1 or x.shape[0] != self.shape[1]:
            raise ValidationError(
                f"x must be a vector of length {self.shape[1]}, got shape {x.shape}"
            )
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n = self.shape
        return f"<{type(self).__name__} {m}x{n}, nnz={self.nnz}>"
