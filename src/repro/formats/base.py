"""Abstract base class and registry for sparse storage formats."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, Tuple, Type

import numpy as np

from ..errors import FormatError, ValidationError
from ..types import VALUE_DTYPE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .coo import COOMatrix

__all__ = ["SparseFormat", "register_format", "get_format", "available_formats"]

_REGISTRY: Dict[str, Type["SparseFormat"]] = {}


def register_format(cls: Type["SparseFormat"]) -> Type["SparseFormat"]:
    """Class decorator adding a format to the global registry by its name."""
    name = getattr(cls, "format_name", None)
    if not name:
        raise FormatError(f"{cls.__name__} does not define format_name")
    if name in _REGISTRY:
        raise FormatError(f"format {name!r} registered twice")
    _REGISTRY[name] = cls
    return cls


def get_format(name: str) -> Type["SparseFormat"]:
    """Look up a registered format class by name (e.g. ``"ellpack"``)."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise FormatError(
            f"unknown format {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_formats() -> Tuple[str, ...]:
    """Names of all registered formats, sorted."""
    return tuple(sorted(_REGISTRY))


class SparseFormat(ABC):
    """Common interface of every sparse storage scheme in the library.

    Subclasses are immutable containers of device arrays. They expose:

    * ``shape`` / ``nnz`` — logical matrix metadata;
    * ``to_coo()`` / ``from_coo()`` — conversion through the canonical
      coordinate representation;
    * ``spmv(x)`` — reference host SpMV (vectorized NumPy, no simulation);
    * ``device_bytes()`` — per-component byte accounting, the input to the
      compression statistics (Tables 3–5) and the GPU timing model.
    """

    #: registry key; subclasses must override.
    format_name: str = ""

    @property
    @abstractmethod
    def shape(self) -> Tuple[int, int]:
        """Logical ``(rows, cols)`` of the matrix."""

    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of stored non-zero entries (excluding padding)."""

    @abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert to the canonical coordinate representation."""

    @classmethod
    @abstractmethod
    def from_coo(cls, coo: "COOMatrix", **kwargs) -> "SparseFormat":
        """Build this format from a :class:`COOMatrix`."""

    @abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference host computation of ``y = A @ x``."""

    @abstractmethod
    def device_bytes(self) -> Dict[str, int]:
        """Bytes each component occupies on the (simulated) device.

        Returns a dict with at least the keys ``"index"`` and ``"values"``;
        formats with auxiliary arrays (row lengths, slice pointers, bit
        allocations, ...) add an ``"aux"`` key.
        """

    # ------------------------------------------------------------------
    # Shared conveniences
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Total device bytes across all components."""
        return int(sum(self.device_bytes().values()))

    @property
    def index_bytes(self) -> int:
        """Device bytes of index data (the target of BRO compression)."""
        return int(self.device_bytes()["index"])

    def to_dense(self) -> np.ndarray:
        """Materialize the matrix densely (testing/debugging only)."""
        return self.to_coo().to_dense()

    def check_x(self, x: np.ndarray) -> np.ndarray:
        """Validate the input vector of an SpMV and return it as float64."""
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.ndim != 1 or x.shape[0] != self.shape[1]:
            raise ValidationError(
                f"x must be a vector of length {self.shape[1]}, got shape {x.shape}"
            )
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n = self.shape
        return f"<{type(self).__name__} {m}x{n}, nnz={self.nnz}>"
