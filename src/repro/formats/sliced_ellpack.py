"""Sliced-ELLPACK format (Monakov et al.), also the skeleton of BRO-ELL.

Rows are partitioned into slices of height ``h`` (the paper maps one slice
to one thread block, ``h = 256``). Each slice is stored as its own dense
ELLPACK block whose width is that slice's maximum row length — the paper's
``num_col = [l_1, ..., l_s]`` array — so a slice of short rows wastes no
storage on the global maximum ``k``.

BRO-ELL (:mod:`repro.core.bro_ell`) reuses exactly this partitioning and
replaces each slice's dense ``col_idx`` block with a compressed bit stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

import numpy as np

from ..errors import FormatError, ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.validation import check_positive
from .base import SparseFormat, register_format
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["SlicedELLPACKMatrix", "slice_bounds", "variable_slice_bounds"]


def slice_bounds(m: int, h: int) -> np.ndarray:
    """Row boundaries of each slice: ``[0, h, 2h, ..., m]`` (int64).

    ``h`` must satisfy ``1 <= h <= m``: a larger ``h`` would silently
    collapse to one degenerate slice whose height disagrees with the
    stored ``h`` (launch configs and validators would then disagree about
    the thread-block size). Callers that want the clamped behaviour spell
    it out with ``min(h, m)``.
    """
    m = check_positive(m, "m")
    if h < 1 or h > m:
        raise FormatError(
            f"slice height h={h} out of range for m={m} rows (need 1 <= h <= m)"
        )
    return np.append(np.arange(0, m, int(h), dtype=np.int64), np.int64(m))


def variable_slice_bounds(m: int, heights: np.ndarray) -> np.ndarray:
    """Row boundaries for explicitly-sized slices: ``[0, cumsum(heights)]``.

    The variable-height generalization of :func:`slice_bounds` that makes
    sorted-window partitionings (SELL-C-σ chunks, CMRS strips) expressible
    with the same edge-array convention. ``heights`` must be positive and
    sum to ``m``.
    """
    m = check_positive(m, "m")
    heights = np.asarray(heights, dtype=np.int64).reshape(-1)
    if heights.size == 0 or heights.min() < 1:
        raise FormatError(
            f"slice heights must be positive, got {heights.tolist()[:8]}"
        )
    total = int(heights.sum())
    if total != m:
        raise FormatError(
            f"slice heights sum to {total}, matrix has m={m} rows"
        )
    edges = np.zeros(heights.shape[0] + 1, dtype=np.int64)
    np.cumsum(heights, out=edges[1:])
    return edges


@register_format(default_kwargs={"h": 256}, tuner=TunerProfile(sweep_h=True))
class SlicedELLPACKMatrix(SparseFormat):
    """Slice-partitioned ELLPACK with per-slice widths.

    Slice ``i`` covers rows ``[i*h, min((i+1)*h, m))`` and stores a dense
    ``(h_i, l_i)`` block of column indices and values, flattened row-major
    into the shared ``col_idx`` / ``vals`` buffers at ``block_ptr[i]``.
    """

    format_name = "sliced_ellpack"

    def __init__(
        self,
        col_idx: np.ndarray,
        vals: np.ndarray,
        row_lengths: np.ndarray,
        num_col: np.ndarray,
        h: int,
        shape: Tuple[int, int],
        edges: np.ndarray | None = None,
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        h = check_positive(h, "h")
        if edges is None:
            # Uniform partitioning; a nominal h above m means one slice.
            self._edges = slice_bounds(m, min(h, m))
        else:
            edges = np.asarray(edges, dtype=np.int64).reshape(-1)
            if edges.shape[0] < 2 or int(edges[0]) != 0:
                raise FormatError(
                    f"explicit slice edges must start at 0, got {edges[:3].tolist()}"
                )
            self._edges = variable_slice_bounds(m, np.diff(edges))
        s = self._edges.shape[0] - 1
        num_col = np.asarray(num_col, dtype=np.int64)
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if num_col.shape != (s,):
            raise ValidationError(f"num_col must have {s} entries, got {num_col.shape}")
        if row_lengths.shape != (m,):
            raise ValidationError("row_lengths must have one entry per row")
        heights = np.diff(self._edges)
        block_sizes = heights * num_col
        expected = int(block_sizes.sum())
        col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if col_idx.shape != (expected,) or vals.shape != (expected,):
            raise ValidationError(
                f"flat buffers must have {expected} entries, got "
                f"{col_idx.shape} and {vals.shape}"
            )
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValidationError("column index out of range")

        self._block_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(block_sizes, out=self._block_ptr[1:])
        self._col_idx = col_idx
        self._vals = vals
        self._row_lengths = row_lengths
        self._num_col = num_col
        self._h = h
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def h(self) -> int:
        """Slice height (threads per block in the paper's mapping)."""
        return self._h

    @property
    def num_slices(self) -> int:
        return self._edges.shape[0] - 1

    @property
    def num_col(self) -> np.ndarray:
        """Per-slice width — the paper's ``num_col = [l_1, ..., l_s]``."""
        return self._num_col

    @property
    def row_lengths(self) -> np.ndarray:
        """Real entries per row."""
        return self._row_lengths

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    @property
    def slice_edges(self) -> np.ndarray:
        """Row boundaries of each slice."""
        return self._edges

    def slice_block(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return slice ``i``'s ``(h_i, l_i)`` index and value blocks (views)."""
        if not 0 <= i < self.num_slices:
            raise ValidationError(f"slice index {i} out of range")
        lo, hi = int(self._block_ptr[i]), int(self._block_ptr[i + 1])
        h_i = int(self._edges[i + 1] - self._edges[i])
        l_i = int(self._num_col[i])
        return (
            self._col_idx[lo:hi].reshape(h_i, l_i),
            self._vals[lo:hi].reshape(h_i, l_i),
        )

    def iter_slices(self) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(row_start, row_end, col_block, val_block)`` per slice."""
        for i in range(self.num_slices):
            cols, vals = self.slice_block(i)
            yield int(self._edges[i]), int(self._edges[i + 1]), cols, vals

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, h: int = 256, **kwargs) -> "SlicedELLPACKMatrix":
        m, _ = coo.shape
        h = check_positive(h, "h")
        lengths = coo.row_lengths()
        edges = slice_bounds(m, min(h, m))
        s = edges.shape[0] - 1
        num_col = np.array(
            [int(lengths[edges[i] : edges[i + 1]].max(initial=0)) for i in range(s)],
            dtype=np.int64,
        )
        csr = CSRMatrix.from_coo(coo)
        heights = np.diff(edges)
        total = int((heights * num_col).sum())
        col_idx = np.zeros(total, dtype=INDEX_DTYPE)
        vals = np.zeros(total, dtype=VALUE_DTYPE)
        block_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(heights * num_col, out=block_ptr[1:])
        # Scatter every entry into its slice block (vectorized over entries).
        if coo.nnz:
            row = np.repeat(np.arange(m, dtype=np.int64), lengths)
            pos = np.arange(coo.nnz, dtype=np.int64) - np.repeat(
                csr.indptr[:-1], lengths
            )
            slice_of_row = np.searchsorted(edges, row, side="right") - 1
            local_row = row - edges[slice_of_row]
            flat = (
                block_ptr[slice_of_row]
                + local_row * num_col[slice_of_row]
                + pos
            )
            col_idx[flat] = csr.indices
            vals[flat] = csr.vals
        return cls(col_idx, vals, lengths, num_col, h, coo.shape)

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = [], [], []
        for r0, r1, col_block, val_block in self.iter_slices():
            h_i, l_i = col_block.shape
            lens = self._row_lengths[r0:r1]
            mask = np.arange(l_i)[np.newaxis, :] < lens[:, np.newaxis]
            r, p = np.nonzero(mask)
            rows.append(r + r0)
            cols.append(col_block[r, p])
            vals.append(val_block[r, p])
        if rows:
            return COOMatrix(
                np.concatenate(rows),
                np.concatenate(cols),
                np.concatenate(vals),
                self._shape,
            )
        return COOMatrix(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), self._shape
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {"shape": list(self._shape), "h": self._h}
        arrays = {
            "col_idx": self._col_idx,
            "vals": self._vals,
            "row_lengths": self._row_lengths,
            "num_col": self._num_col,
        }
        # Non-uniform partitionings carry their edges explicitly; the
        # uniform (default) container stays byte-identical to before the
        # variable-width extension.
        m = self._shape[0]
        if not np.array_equal(self._edges, slice_bounds(m, min(self._h, m))):
            arrays["slice_edges"] = self._edges
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "SlicedELLPACKMatrix":
        return cls(
            arrays["col_idx"], arrays["vals"], arrays["row_lengths"],
            arrays["num_col"], int(meta["h"]), tuple(meta["shape"]),
            edges=arrays.get("slice_edges"),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        for r0, r1, col_block, val_block in self.iter_slices():
            if col_block.shape[1]:
                # One FMA per ELL column accumulated sequentially — the
                # device loop order, and the order the prepared-plan
                # replay reproduces bit-for-bit (einsum would reassociate).
                prod = val_block * x[col_block]
                acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
                for c in range(prod.shape[1]):
                    acc += prod[:, c]
                y[r0:r1] = acc
        return y

    def device_bytes(self) -> Dict[str, int]:
        return {
            "index": int(self._col_idx.nbytes),
            "values": int(self._vals.nbytes),
            # num_col + block_ptr, stored as int32 on device.
            "aux": int(4 * (self._num_col.shape[0] + self._block_ptr.shape[0])),
        }
