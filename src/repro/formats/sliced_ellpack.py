"""Sliced-ELLPACK format (Monakov et al.), also the skeleton of BRO-ELL.

Rows are partitioned into slices of height ``h`` (the paper maps one slice
to one thread block, ``h = 256``). Each slice is stored as its own dense
ELLPACK block whose width is that slice's maximum row length — the paper's
``num_col = [l_1, ..., l_s]`` array — so a slice of short rows wastes no
storage on the global maximum ``k``.

BRO-ELL (:mod:`repro.core.bro_ell`) reuses exactly this partitioning and
replaces each slice's dense ``col_idx`` block with a compressed bit stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.validation import check_positive
from .base import SparseFormat, register_format
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["SlicedELLPACKMatrix", "slice_bounds"]


def slice_bounds(m: int, h: int) -> np.ndarray:
    """Row boundaries of each slice: ``[0, h, 2h, ..., m]`` (int64)."""
    m = check_positive(m, "m")
    h = check_positive(h, "h")
    return np.append(np.arange(0, m, h, dtype=np.int64), np.int64(m))


@register_format(default_kwargs={"h": 256}, tuner=TunerProfile(sweep_h=True))
class SlicedELLPACKMatrix(SparseFormat):
    """Slice-partitioned ELLPACK with per-slice widths.

    Slice ``i`` covers rows ``[i*h, min((i+1)*h, m))`` and stores a dense
    ``(h_i, l_i)`` block of column indices and values, flattened row-major
    into the shared ``col_idx`` / ``vals`` buffers at ``block_ptr[i]``.
    """

    format_name = "sliced_ellpack"

    def __init__(
        self,
        col_idx: np.ndarray,
        vals: np.ndarray,
        row_lengths: np.ndarray,
        num_col: np.ndarray,
        h: int,
        shape: Tuple[int, int],
    ) -> None:
        m, n = int(shape[0]), int(shape[1])
        h = check_positive(h, "h")
        self._edges = slice_bounds(m, h)
        s = self._edges.shape[0] - 1
        num_col = np.asarray(num_col, dtype=np.int64)
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        if num_col.shape != (s,):
            raise ValidationError(f"num_col must have {s} entries, got {num_col.shape}")
        if row_lengths.shape != (m,):
            raise ValidationError("row_lengths must have one entry per row")
        heights = np.diff(self._edges)
        block_sizes = heights * num_col
        expected = int(block_sizes.sum())
        col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if col_idx.shape != (expected,) or vals.shape != (expected,):
            raise ValidationError(
                f"flat buffers must have {expected} entries, got "
                f"{col_idx.shape} and {vals.shape}"
            )
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValidationError("column index out of range")

        self._block_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(block_sizes, out=self._block_ptr[1:])
        self._col_idx = col_idx
        self._vals = vals
        self._row_lengths = row_lengths
        self._num_col = num_col
        self._h = h
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def h(self) -> int:
        """Slice height (threads per block in the paper's mapping)."""
        return self._h

    @property
    def num_slices(self) -> int:
        return self._edges.shape[0] - 1

    @property
    def num_col(self) -> np.ndarray:
        """Per-slice width — the paper's ``num_col = [l_1, ..., l_s]``."""
        return self._num_col

    @property
    def row_lengths(self) -> np.ndarray:
        """Real entries per row."""
        return self._row_lengths

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    @property
    def slice_edges(self) -> np.ndarray:
        """Row boundaries of each slice."""
        return self._edges

    def slice_block(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return slice ``i``'s ``(h_i, l_i)`` index and value blocks (views)."""
        if not 0 <= i < self.num_slices:
            raise ValidationError(f"slice index {i} out of range")
        lo, hi = int(self._block_ptr[i]), int(self._block_ptr[i + 1])
        h_i = int(self._edges[i + 1] - self._edges[i])
        l_i = int(self._num_col[i])
        return (
            self._col_idx[lo:hi].reshape(h_i, l_i),
            self._vals[lo:hi].reshape(h_i, l_i),
        )

    def iter_slices(self) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(row_start, row_end, col_block, val_block)`` per slice."""
        for i in range(self.num_slices):
            cols, vals = self.slice_block(i)
            yield int(self._edges[i]), int(self._edges[i + 1]), cols, vals

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, h: int = 256, **kwargs) -> "SlicedELLPACKMatrix":
        m, _ = coo.shape
        h = check_positive(h, "h")
        lengths = coo.row_lengths()
        edges = slice_bounds(m, h)
        s = edges.shape[0] - 1
        num_col = np.array(
            [int(lengths[edges[i] : edges[i + 1]].max(initial=0)) for i in range(s)],
            dtype=np.int64,
        )
        csr = CSRMatrix.from_coo(coo)
        heights = np.diff(edges)
        total = int((heights * num_col).sum())
        col_idx = np.zeros(total, dtype=INDEX_DTYPE)
        vals = np.zeros(total, dtype=VALUE_DTYPE)
        block_ptr = np.zeros(s + 1, dtype=np.int64)
        np.cumsum(heights * num_col, out=block_ptr[1:])
        # Scatter every entry into its slice block (vectorized over entries).
        if coo.nnz:
            row = np.repeat(np.arange(m, dtype=np.int64), lengths)
            pos = np.arange(coo.nnz, dtype=np.int64) - np.repeat(
                csr.indptr[:-1], lengths
            )
            slice_of_row = np.searchsorted(edges, row, side="right") - 1
            local_row = row - edges[slice_of_row]
            flat = (
                block_ptr[slice_of_row]
                + local_row * num_col[slice_of_row]
                + pos
            )
            col_idx[flat] = csr.indices
            vals[flat] = csr.vals
        return cls(col_idx, vals, lengths, num_col, h, coo.shape)

    def to_coo(self) -> COOMatrix:
        rows, cols, vals = [], [], []
        for r0, r1, col_block, val_block in self.iter_slices():
            h_i, l_i = col_block.shape
            lens = self._row_lengths[r0:r1]
            mask = np.arange(l_i)[np.newaxis, :] < lens[:, np.newaxis]
            r, p = np.nonzero(mask)
            rows.append(r + r0)
            cols.append(col_block[r, p])
            vals.append(val_block[r, p])
        if rows:
            return COOMatrix(
                np.concatenate(rows),
                np.concatenate(cols),
                np.concatenate(vals),
                self._shape,
            )
        return COOMatrix(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), self._shape
        )

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {"shape": list(self._shape), "h": self._h}
        arrays = {
            "col_idx": self._col_idx,
            "vals": self._vals,
            "row_lengths": self._row_lengths,
            "num_col": self._num_col,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "SlicedELLPACKMatrix":
        return cls(
            arrays["col_idx"], arrays["vals"], arrays["row_lengths"],
            arrays["num_col"], int(meta["h"]), tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        y = np.zeros(self._shape[0], dtype=VALUE_DTYPE)
        for r0, r1, col_block, val_block in self.iter_slices():
            if col_block.shape[1]:
                y[r0:r1] = np.einsum("ij,ij->i", val_block, x[col_block])
        return y

    def device_bytes(self) -> Dict[str, int]:
        return {
            "index": int(self._col_idx.nbytes),
            "values": int(self._vals.nbytes),
            # num_col + block_ptr, stored as int32 on device.
            "aux": int(4 * (self._num_col.shape[0] + self._block_ptr.shape[0])),
        }
