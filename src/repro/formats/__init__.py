"""Classical sparse-matrix storage formats (the paper's baselines).

Every format implements the :class:`~repro.formats.base.SparseFormat`
interface: conversion to/from :class:`~repro.formats.coo.COOMatrix`, a
reference (host-side, vectorized) ``spmv``, and device-byte accounting used
by the compression statistics and the GPU timing model.

The *simulated-GPU* SpMV kernels — the ones that emit memory-transaction
counters — live in :mod:`repro.kernels`; the ``spmv`` methods here are the
plain mathematical reference used for correctness checks.
"""

from .base import SparseFormat, available_formats, get_format
from .bellpack import BELLPACKMatrix
from .cmrs import CMRSMatrix
from .conversion import convert, from_dense, from_scipy, to_scipy
from .coo import COOMatrix
from .csr import CSRMatrix
from .ellpack import ELLPACKMatrix
from .ellpack_r import ELLPACKRMatrix
from .hyb import HYBMatrix, hyb_split_column
from .sell_c_sigma import SELLCSigmaMatrix, sell_permutation
from .sliced_ellpack import SlicedELLPACKMatrix

__all__ = [
    "SparseFormat",
    "available_formats",
    "get_format",
    "convert",
    "from_dense",
    "from_scipy",
    "to_scipy",
    "BELLPACKMatrix",
    "CMRSMatrix",
    "COOMatrix",
    "CSRMatrix",
    "ELLPACKMatrix",
    "ELLPACKRMatrix",
    "SELLCSigmaMatrix",
    "sell_permutation",
    "SlicedELLPACKMatrix",
    "HYBMatrix",
    "hyb_split_column",
]
