"""ELLPACK-ITPACK (ELL) format.

Stores non-zeros in dense ``(m, k)`` arrays where ``k`` is the maximum row
length, shifting entries left and padding shorter rows (paper Section 2.1.2).
The GPU layout is column-major (one thread per row reads down a column),
which the simulated kernel accounts for; host-side we keep C-order arrays and
iterate column-wise.

Padding entries store column index 0 and value 0.0, so the reference SpMV can
blindly multiply-add them; the ``valid_mask`` derived from ``row_lengths``
marks real entries for the compression and accounting paths.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..errors import ValidationError
from ..registry import TunerProfile
from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..utils.validation import check_2d
from .base import SparseFormat, register_format
from .coo import COOMatrix

__all__ = ["ELLPACKMatrix", "ellpack_arrays_from_coo"]


def ellpack_arrays_from_coo(
    coo: COOMatrix, k: int | None = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build left-packed ``(col_idx, vals, row_lengths)`` arrays from COO.

    ``k`` defaults to the maximum row length; passing a smaller ``k``
    truncates longer rows (used by the HYB split, which moves the overflow
    into a COO part).
    """
    m, _ = coo.shape
    lengths = coo.row_lengths()
    k_full = int(lengths.max()) if lengths.size else 0
    if k is None:
        k = k_full
    k = int(k)
    if k < 0:
        raise ValidationError(f"k must be non-negative, got {k}")

    col_idx = np.zeros((m, k), dtype=INDEX_DTYPE)
    vals = np.zeros((m, k), dtype=VALUE_DTYPE)
    if coo.nnz and k:
        # Position of each entry within its row: COO entries are sorted by
        # (row, col), so a per-row running counter is a cumulative count.
        row = coo.row_idx.astype(np.int64)
        starts = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        pos = np.arange(coo.nnz, dtype=np.int64) - starts[row]
        keep = pos < k
        col_idx[row[keep], pos[keep]] = coo.col_idx[keep]
        vals[row[keep], pos[keep]] = coo.vals[keep]
    stored = np.minimum(lengths, k)
    return col_idx, vals, stored


@register_format(tuner=TunerProfile(dense_family=True))
class ELLPACKMatrix(SparseFormat):
    """Dense-array ELLPACK storage (paper Section 2.1.2)."""

    format_name = "ellpack"

    def __init__(
        self,
        col_idx: np.ndarray,
        vals: np.ndarray,
        row_lengths: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        col_idx = check_2d(col_idx, "col_idx").astype(INDEX_DTYPE, copy=False)
        vals = check_2d(vals, "vals").astype(VALUE_DTYPE, copy=False)
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        m, n = int(shape[0]), int(shape[1])
        if col_idx.shape != vals.shape:
            raise ValidationError(
                f"col_idx shape {col_idx.shape} != vals shape {vals.shape}"
            )
        if col_idx.shape[0] != m:
            raise ValidationError(f"arrays have {col_idx.shape[0]} rows, shape says {m}")
        if row_lengths.shape != (m,):
            raise ValidationError("row_lengths must have one entry per row")
        k = col_idx.shape[1]
        if row_lengths.size and (row_lengths.min() < 0 or row_lengths.max() > k):
            raise ValidationError(f"row lengths must be in [0, k={k}]")
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n):
            raise ValidationError("column index out of range")

        self._col_idx = col_idx
        self._vals = vals
        self._row_lengths = row_lengths
        self._shape = (m, n)

    # ------------------------------------------------------------------
    @property
    def col_idx(self) -> np.ndarray:
        """``(m, k)`` column indices, padding stored as 0."""
        return self._col_idx

    @property
    def vals(self) -> np.ndarray:
        """``(m, k)`` values, padding stored as 0.0."""
        return self._vals

    @property
    def row_lengths(self) -> np.ndarray:
        """Real (non-padding) entries per row."""
        return self._row_lengths

    @property
    def k(self) -> int:
        """Padded row width — the maximum row length."""
        return int(self._col_idx.shape[1])

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._row_lengths.sum())

    @property
    def padded_entries(self) -> int:
        """Number of padding slots (wasted storage and wasted flops)."""
        return int(self._shape[0] * self.k - self.nnz)

    def valid_mask(self) -> np.ndarray:
        """Boolean ``(m, k)`` mask of real entries."""
        return np.arange(self.k)[np.newaxis, :] < self._row_lengths[:, np.newaxis]

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        mask = self.valid_mask()
        row, pos = np.nonzero(mask)
        return COOMatrix(row, self._col_idx[row, pos], self._vals[row, pos], self._shape)

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "ELLPACKMatrix":
        col_idx, vals, lengths = ellpack_arrays_from_coo(coo)
        return cls(col_idx, vals, lengths, coo.shape)

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {"shape": list(self._shape)}
        arrays = {
            "col_idx": self._col_idx,
            "vals": self._vals,
            "row_lengths": self._row_lengths,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "ELLPACKMatrix":
        return cls(
            arrays["col_idx"], arrays["vals"], arrays["row_lengths"],
            tuple(meta["shape"]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        # Padding has value 0.0, so the gather on index 0 is harmless —
        # exactly what the GPU kernel does when it multiplies padded slots.
        return np.einsum("ij,ij->i", self._vals, x[self._col_idx])

    def device_bytes(self) -> Dict[str, int]:
        return {
            "index": int(self._col_idx.nbytes),
            "values": int(self._vals.nbytes),
        }
